//! Semantic-rule fixture tests (T1 / C1 / A1) and the parse-coverage
//! self-test.
//!
//! The fixtures under `tests/fixtures/` are parsed into a one-file
//! workspace and run through the full semantic pipeline (item parser →
//! call graph → dataflow → rules), as if each lived at a path inside the
//! rule's scope. Every rule has a positive fixture (each escape vector
//! fires) and a negative one (the sanctioned/sanitized twin stays
//! quiet). The coverage test at the bottom pins the item parser against
//! the real workspace: every `.rs` file must parse with zero recorded
//! errors, so the parser's approximations can never silently drift away
//! from the code the deep lint pass runs on.

use std::path::{Path, PathBuf};

use peercache_lint::dataflow::Workspace;
use peercache_lint::parser::parse_file;
use peercache_lint::semantic::analyze;
use peercache_lint::Violation;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Parse one fixture as a single-file workspace and run the semantic
/// rules over it.
fn analyze_fixture(crate_name: &str, rel_path: &str, name: &str) -> Vec<Violation> {
    let src = fixture(name);
    let file = parse_file(crate_name, rel_path, &src);
    assert!(
        file.errors.is_empty(),
        "fixture {name} must parse: {:?}",
        file.errors
    );
    analyze(&Workspace::build(vec![file]))
}

fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- T1

#[test]
fn t1_fires_on_cross_function_taint() {
    let v = analyze_fixture("core", "crates/core/src/fixture.rs", "t1_taint_flow.rs");
    assert_eq!(rules_fired(&v), ["T1"], "{v:#?}");
    assert_eq!(v.len(), 2, "digest sink + emission sink: {v:#?}");

    // The ambient-time flow into `state_digest` crosses two call edges,
    // so its trace must walk the chain back to the `Instant` read.
    let digest = v
        .iter()
        .find(|x| x.message.contains("state_digest"))
        .expect("digest finding");
    assert!(
        digest.message.contains("ambient-time"),
        "{}",
        digest.message
    );
    assert!(
        digest.trace.len() >= 3,
        "expected a multi-hop flow trace: {:#?}",
        digest.trace
    );
    assert!(
        digest.trace.iter().any(|t| t.contains("ambient_seed")),
        "trace must reach the source: {:#?}",
        digest.trace
    );

    // The hash-order flow is local evidence feeding a telemetry sink.
    let report = v
        .iter()
        .find(|x| x.message.contains("obs::event!"))
        .expect("emission finding");
    assert!(
        report.message.contains("hash-iteration-order"),
        "{}",
        report.message
    );
}

#[test]
fn t1_exempt_crates_stay_quiet() {
    for crate_name in ["bench", "lint"] {
        let v = analyze_fixture(
            crate_name,
            &format!("crates/{crate_name}/src/fixture.rs"),
            "t1_taint_flow.rs",
        );
        assert!(
            !v.iter().any(|x| x.rule == "T1"),
            "{crate_name} is T1-exempt: {v:#?}"
        );
    }
}

#[test]
fn t1_sanctioned_boundaries_and_sanitizers_cut_the_flow() {
    let v = analyze_fixture("core", "crates/core/src/fixture.rs", "t1_clean.rs");
    assert!(v.is_empty(), "clean T1 fixture flagged: {v:#?}");
}

// ---------------------------------------------------------------- C1

#[test]
fn c1_fires_on_every_escape_vector() {
    let v = analyze_fixture("core", "crates/core/src/fixture.rs", "c1_shard_escape.rs");
    assert_eq!(rules_fired(&v), ["C1"], "{v:#?}");
    let messages: String = v.iter().map(|x| x.message.as_str()).collect();
    for vector in [
        "&mut acc",        // outer &mut capture
        "obs::counter",    // direct emission from a worker
        "emit_progress",   // resolved call reaching emission
        "caller-supplied", // unresolvable Fn-param call
        "arena_mut",       // direct shard mutation
    ] {
        assert!(messages.contains(vector), "missing {vector}: {v:#?}");
    }
    assert!(v.len() >= 5, "every escape vector fires once: {v:#?}");
}

#[test]
fn c1_exempt_crates_stay_quiet() {
    for crate_name in ["obs", "bench", "lint"] {
        let v = analyze_fixture(
            crate_name,
            &format!("crates/{crate_name}/src/fixture.rs"),
            "c1_shard_escape.rs",
        );
        assert!(
            !v.iter().any(|x| x.rule == "C1"),
            "{crate_name} is C1-exempt: {v:#?}"
        );
    }
}

#[test]
fn c1_quiet_wrapping_discharges_the_obligations() {
    let v = analyze_fixture("core", "crates/core/src/fixture.rs", "c1_clean.rs");
    assert!(v.is_empty(), "clean C1 fixture flagged: {v:#?}");
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_fires_inside_the_digest_closure() {
    let v = analyze_fixture("core", "crates/core/src/fixture.rs", "a1_arith.rs");
    assert_eq!(rules_fired(&v), ["A1"], "{v:#?}");
    assert_eq!(v.len(), 2, "raw `<<` and raw `+`: {v:#?}");
    assert!(v.iter().any(|x| x.message.contains("`<<`")), "{v:#?}");
    assert!(v.iter().any(|x| x.message.contains("`+`")), "{v:#?}");
    for x in &v {
        assert!(
            x.trace.iter().any(|t| t.contains("state_digest")),
            "trace must reach the digest root: {x:#?}"
        );
    }
}

#[test]
fn a1_is_scoped_to_digest_paths_and_wrapping_ops_pass() {
    let v = analyze_fixture("core", "crates/core/src/fixture.rs", "a1_clean.rs");
    assert!(v.is_empty(), "clean A1 fixture flagged: {v:#?}");
    // Outside A1's crates the same raw arithmetic is not its business.
    let v = analyze_fixture("lp", "crates/lp/src/fixture.rs", "a1_arith.rs");
    assert!(
        !v.iter().any(|x| x.rule == "A1"),
        "lp is outside A1: {v:#?}"
    );
}

// --------------------------------------------------- parse coverage

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The item parser is total over this workspace: every `.rs` file —
/// every crate's sources, tests and benches, the root package, its
/// integration tests and examples, and the lint fixtures themselves —
/// parses with zero recorded errors. This is the invariant the deep
/// lint pass relies on (`--deep` hard-fails on any parse error).
#[test]
fn every_workspace_rs_file_parses_with_zero_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    collect_rs(&root.join("examples"), &mut files);
    assert!(
        files.len() >= 40,
        "workspace walk looks wrong: only {} files",
        files.len()
    );

    let mut failures = Vec::new();
    let mut functions = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).expect("readable source");
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let parsed = parse_file("coverage", &rel, &src);
        functions += parsed.fns.len();
        for err in &parsed.errors {
            failures.push(format!("{rel}: {err}"));
        }
    }
    assert!(
        failures.is_empty(),
        "parse failures across the workspace:\n{}",
        failures.join("\n")
    );
    assert!(
        functions >= 500,
        "parser found suspiciously few functions: {functions}"
    );
}
