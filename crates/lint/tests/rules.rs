//! Fixture tests: each rule fires on its fixture, clean code passes, each
//! waiver form works, and stale waivers are reported.
//!
//! The fixtures under `tests/fixtures/` are lexed, never compiled; each one
//! is linted as if it lived at a path inside the rule's scope. Deleting any
//! rule's implementation makes at least one of these tests fail.

use peercache_lint::waivers::{current_pr_from_changes, stale_waivers};
use peercache_lint::{apply_waivers, lint_source, parse_waivers, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn d1_fires_on_hash_collections() {
    let v = lint_source(
        "core",
        "crates/core/src/fixture.rs",
        &fixture("d1_hash_collections.rs"),
    );
    assert_eq!(rules_fired(&v), ["D1"]);
    // Both the `use` paths and the type annotations fire.
    assert!(v.len() >= 4, "expected every HashMap/HashSet token: {v:#?}");
}

#[test]
fn d1_is_scoped_to_deterministic_crates() {
    let v = lint_source(
        "obs",
        "crates/obs/src/fixture.rs",
        &fixture("d1_hash_collections.rs"),
    );
    assert!(v.is_empty(), "obs is outside D1 scope: {v:#?}");
}

#[test]
fn d2_fires_on_ambient_time_and_rng() {
    let v = lint_source(
        "core",
        "crates/core/src/fixture.rs",
        &fixture("d2_ambient_time.rs"),
    );
    assert_eq!(rules_fired(&v), ["D2"]);
    let snippets: String = v.iter().map(|x| x.snippet.as_str()).collect();
    assert!(snippets.contains("Instant"));
    assert!(snippets.contains("SystemTime"));
    assert!(snippets.contains("thread_rng"));
}

#[test]
fn d2_exempts_obs_and_bench() {
    for crate_name in ["obs", "bench"] {
        let v = lint_source(
            crate_name,
            &format!("crates/{crate_name}/src/fixture.rs"),
            &fixture("d2_ambient_time.rs"),
        );
        assert!(v.is_empty(), "{crate_name} is D2-exempt: {v:#?}");
    }
}

#[test]
fn p1_fires_on_every_panic_vector() {
    let v = lint_source(
        "dist",
        "crates/dist/src/fixture.rs",
        &fixture("p1_panic_paths.rs"),
    );
    assert_eq!(rules_fired(&v), ["P1"]);
    let snippets: String = v.iter().map(|x| x.snippet.as_str()).collect();
    for vector in ["unwrap", "expect", "panic!", "todo!", "unreachable!"] {
        assert!(snippets.contains(vector), "missing {vector}: {v:#?}");
    }
}

#[test]
fn p1_is_scoped_to_protocol_paths() {
    // The same code outside dist / core::world is not P1's business.
    let v = lint_source(
        "core",
        "crates/core/src/planner.rs",
        &fixture("p1_panic_paths.rs"),
    );
    assert!(v.is_empty(), "P1 scope leaked: {v:#?}");
    // ...but core::world is in scope.
    let v = lint_source(
        "core",
        "crates/core/src/world.rs",
        &fixture("p1_panic_paths.rs"),
    );
    assert_eq!(rules_fired(&v), ["P1"]);
}

#[test]
fn n1_fires_on_float_and_cost_equality() {
    let v = lint_source(
        "core",
        "crates/core/src/fixture.rs",
        &fixture("n1_float_eq.rs"),
    );
    assert_eq!(rules_fired(&v), ["N1"]);
    assert_eq!(
        v.len(),
        3,
        "literal, cost-ident, and fairness sites: {v:#?}"
    );
}

#[test]
fn n1_exempts_the_helper_module() {
    let v = lint_source(
        "core",
        "crates/core/src/costs.rs",
        &fixture("n1_float_eq.rs"),
    );
    assert!(v.is_empty(), "core::costs defines the helpers: {v:#?}");
}

#[test]
fn s1_fires_on_dense_apsp_outside_the_allowed_files() {
    let v = lint_source(
        "core",
        "crates/core/src/planner.rs",
        &fixture("s1_dense_apsp.rs"),
    );
    assert_eq!(rules_fired(&v), ["S1"]);
    assert_eq!(
        v.len(),
        2,
        "compute and compute_with call sites; doc links and cfg(test) \
         regions stay quiet: {v:#?}"
    );
}

#[test]
fn s1_exempts_the_sanctioned_files() {
    for (crate_name, path) in [
        ("graph", "crates/graph/src/paths.rs"),
        ("graph", "crates/graph/src/oracle.rs"),
        ("core", "crates/core/src/costs.rs"),
        ("core", "crates/core/src/scoped.rs"),
    ] {
        let v = lint_source(crate_name, path, &fixture("s1_dense_apsp.rs"));
        assert!(
            !v.iter().any(|x| x.rule == "S1"),
            "S1 must not fire in {path}: {v:#?}"
        );
    }
}

#[test]
fn s1_violations_are_waivable_by_snippet() {
    let violations = lint_source(
        "dist",
        "crates/dist/src/view.rs",
        &fixture("s1_dense_apsp.rs"),
    );
    let s1_count = violations.iter().filter(|v| v.rule == "S1").count();
    assert_eq!(s1_count, 2);
    let waivers = parse_waivers(
        r#"
[[waiver]]
rule = "S1"
file = "crates/dist/src/view.rs"
contains = "AllPairsPaths::compute(g, costs"
justification = "fixture: bounded-subgraph compute, deliberately waived"
added_in = "PR 9"
re_audit_after = "PR 14"
"#,
    )
    .unwrap();
    let report = apply_waivers(violations, &waivers);
    assert_eq!(report.waived, 1);
    assert!(report.unused.is_empty());
}

#[test]
fn r1_fires_on_shard_mutation_outside_the_shard_modules() {
    let v = lint_source(
        "core",
        "crates/core/src/world.rs",
        &fixture("r1_shard_mutation.rs"),
    );
    assert_eq!(rules_fired(&v), ["R1"]);
    assert_eq!(
        v.len(),
        2,
        "arena_mut and apply_cross call sites; bare identifiers and \
         cfg(test) regions stay quiet: {v:#?}"
    );
}

#[test]
fn r1_exempts_the_shard_modules() {
    for path in ["crates/core/src/shard.rs", "crates/core/src/sharded.rs"] {
        let v = lint_source("core", path, &fixture("r1_shard_mutation.rs"));
        assert!(
            !v.iter().any(|x| x.rule == "R1"),
            "R1 must not fire in {path}: {v:#?}"
        );
    }
}

#[test]
fn clean_code_passes_everywhere() {
    for (crate_name, path) in [
        ("core", "crates/core/src/world.rs"),
        ("dist", "crates/dist/src/sim.rs"),
        ("graph", "crates/graph/src/paths.rs"),
        ("lp", "crates/lp/src/simplex.rs"),
    ] {
        let v = lint_source(crate_name, path, &fixture("clean.rs"));
        assert!(v.is_empty(), "clean fixture flagged in {path}: {v:#?}");
    }
}

#[test]
fn test_only_code_is_exempt() {
    let v = lint_source(
        "dist",
        "crates/dist/src/fixture.rs",
        &fixture("test_exempt.rs"),
    );
    assert!(v.is_empty(), "cfg(test) region not exempted: {v:#?}");
}

#[test]
fn waivers_silence_matching_violations_only() {
    let violations = lint_source(
        "dist",
        "crates/dist/src/fixture.rs",
        &fixture("p1_panic_paths.rs"),
    );
    let total = violations.len();
    assert!(total >= 5);
    let waivers = parse_waivers(
        r#"
# One matching waiver, keyed by snippet.
[[waiver]]
rule = "P1"
file = "crates/dist/src/fixture.rs"
contains = "slot.expect("
justification = "fixture: deliberately waived"
added_in = "PR 9"
re_audit_after = "PR 14"
"#,
    )
    .unwrap();
    let report = apply_waivers(violations, &waivers);
    assert_eq!(report.waived, 1);
    assert_eq!(report.unwaived.len(), total - 1);
    assert!(report.unused.is_empty());
}

#[test]
fn stale_waivers_are_reported() {
    let violations = lint_source(
        "core",
        "crates/core/src/fixture.rs",
        &fixture("n1_float_eq.rs"),
    );
    let waivers = parse_waivers(
        r#"
[[waiver]]
rule = "N1"
file = "crates/core/src/fixture.rs"
contains = "this snippet no longer exists"
justification = "stale entry"
added_in = "PR 9"
re_audit_after = "PR 14"
"#,
    )
    .unwrap();
    let report = apply_waivers(violations, &waivers);
    assert_eq!(report.waived, 0);
    assert_eq!(report.unused, vec![0]);
}

/// A complete, valid waiver entry with the given rule, for budget tests.
fn entry(rule: &str, n: usize) -> String {
    format!(
        "[[waiver]]\nrule = \"{rule}\"\nfile = \"crates/x/src/f{n}.rs\"\n\
         contains = \"site{n}\"\n\
         justification = \"budget fixture entry with a long enough justification text\"\n\
         added_in = \"PR 9\"\nre_audit_after = \"PR 14\"\n"
    )
}

#[test]
fn waiver_parser_rejects_malformed_entries() {
    // Missing justification (stamps present so the gap is unambiguous).
    let err = parse_waivers(
        "[[waiver]]\nrule = \"D1\"\nfile = \"x.rs\"\ncontains = \"HashMap\"\n\
         added_in = \"PR 9\"\nre_audit_after = \"PR 14\"\n",
    )
    .unwrap_err();
    assert!(err.contains("justification"), "{err}");
    // Unknown key.
    let err = parse_waivers("[[waiver]]\nrule = \"D1\"\nline = \"12\"\n").unwrap_err();
    assert!(err.contains("unknown key"), "{err}");
    // Value outside any entry.
    let err = parse_waivers("rule = \"D1\"\n").unwrap_err();
    assert!(err.contains("before any"), "{err}");
    // Unquoted value.
    let err = parse_waivers("[[waiver]]\nrule = D1\n").unwrap_err();
    assert!(err.contains("double-quoted"), "{err}");
}

#[test]
fn waiver_parser_requires_pr_stamps() {
    // Missing added_in.
    let err = parse_waivers(
        "[[waiver]]\nrule = \"D1\"\nfile = \"x.rs\"\ncontains = \"HashMap\"\n\
         justification = \"a justification long enough to clear the length gate\"\n",
    )
    .unwrap_err();
    assert!(err.contains("added_in"), "{err}");
    // Malformed stamp.
    let err = parse_waivers(
        "[[waiver]]\nrule = \"D1\"\nfile = \"x.rs\"\ncontains = \"HashMap\"\n\
         justification = \"a justification long enough to clear the length gate\"\n\
         added_in = \"nine\"\nre_audit_after = \"PR 14\"\n",
    )
    .unwrap_err();
    assert!(err.contains("PR 9"), "{err}");
    // re_audit_after before added_in.
    let err = parse_waivers(
        "[[waiver]]\nrule = \"D1\"\nfile = \"x.rs\"\ncontains = \"HashMap\"\n\
         justification = \"a justification long enough to clear the length gate\"\n\
         added_in = \"PR 9\"\nre_audit_after = \"PR 8\"\n",
    )
    .unwrap_err();
    assert!(err.contains("precedes"), "{err}");
}

#[test]
fn waiver_budgets_are_hard_limits() {
    // 11 entries breach the total budget of 10.
    let text: String = (0..11)
        .map(|n| entry(["D1", "D2", "P1", "N1"][n % 4], n))
        .collect();
    let err = parse_waivers(&text).unwrap_err();
    assert!(err.contains("budget"), "{err}");
    // 5 entries for one rule breach the per-rule budget of 4.
    let text: String = (0..5).map(|n| entry("N1", n)).collect();
    let err = parse_waivers(&text).unwrap_err();
    assert!(err.contains("per-rule"), "{err}");
    // 10 total with at most 4 per rule parses.
    let text: String = (0..10)
        .map(|n| entry(["D1", "D2", "P1", "N1"][n % 4], n))
        .collect();
    assert_eq!(parse_waivers(&text).unwrap().len(), 10);
}

#[test]
fn stale_waiver_metadata_is_reported() {
    let waivers = parse_waivers(&entry("N1", 0)).unwrap();
    // At or before the re-audit PR: fresh.
    assert!(stale_waivers(&waivers, 9).is_empty());
    assert!(stale_waivers(&waivers, 14).is_empty());
    // Past it: stale, with an actionable message.
    let stale = stale_waivers(&waivers, 15);
    assert_eq!(stale.len(), 1);
    assert!(stale[0].1.contains("re-audit"), "{}", stale[0].1);
}

#[test]
fn current_pr_is_derived_from_changes_md() {
    assert_eq!(current_pr_from_changes(""), 1);
    assert_eq!(
        current_pr_from_changes("- PR 3: things\n- PR 8: more things\n- PR 5: other\n"),
        9
    );
}

#[test]
fn the_committed_waiver_file_parses_within_budget() {
    let path = format!("{}/../../lint-waivers.toml", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(path).unwrap();
    let waivers = parse_waivers(&text).unwrap();
    assert!(waivers.len() <= 10, "waiver budget exceeded");
    for w in &waivers {
        assert!(
            w.justification.len() >= 40,
            "waiver for {} needs a real justification",
            w.file
        );
    }
}
