//! Workspace driver for `peercache-lint`.
//!
//! Walks every workspace member's `src/` tree (plus the root package's
//! `src/`), lints each `.rs` file, applies `lint-waivers.toml`, and exits
//! nonzero on any unwaived violation or stale waiver.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use peercache_lint::{
    apply_waivers, lint_source_with_registry, parse_waivers, registry_from_names_source, Waiver,
};

/// Hard budget from the acceptance criteria: the waiver file may never grow
/// beyond this many entries.
const MAX_WAIVERS: usize = 10;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("peercache-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let root = workspace_root()?;
    let waivers = load_waivers(&root)?;

    // Rule O1's closed vocabulary: the string literals of the obs name
    // registry. A missing or empty registry is a hard error — it would
    // silently disarm the rule.
    let names_path = root.join("crates/obs/src/names.rs");
    let names_src = std::fs::read_to_string(&names_path)
        .map_err(|e| format!("reading {}: {e}", names_path.display()))?;
    let registry = registry_from_names_source(&names_src);
    if registry.is_empty() {
        return Err(format!(
            "{} yielded no registered names; rule O1 cannot run",
            names_path.display()
        ));
    }

    let mut files: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in &members {
        let name = member
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-utf8 crate dir under {}", crates_dir.display()))?
            .to_string();
        collect_rs(&member.join("src"), &name, &mut files)?;
    }
    // The root `peercache` package (library + repro binary).
    collect_rs(&root.join("src"), "peercache", &mut files)?;

    let mut violations = Vec::new();
    for (crate_name, path) in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = rel_path(&root, path);
        violations.extend(lint_source_with_registry(
            crate_name,
            &rel,
            &source,
            Some(&registry),
        ));
    }
    let scanned = files.len();

    let report = apply_waivers(violations, &waivers);
    for v in &report.unwaived {
        eprintln!(
            "peercache-lint: {}:{}: [{}] {}\n    {}",
            v.file, v.line, v.rule, v.message, v.snippet
        );
    }
    for &idx in &report.unused {
        let w = &waivers[idx];
        eprintln!(
            "peercache-lint: stale waiver #{} ({} in {}, contains {:?}) matched nothing; \
             remove it from lint-waivers.toml",
            idx + 1,
            w.rule,
            w.file,
            w.contains
        );
    }
    let ok = report.unwaived.is_empty() && report.unused.is_empty();
    println!(
        "peercache-lint: {scanned} files scanned, {} violation(s), {} waived, {} stale waiver(s)",
        report.unwaived.len(),
        report.waived,
        report.unused.len()
    );
    Ok(ok)
}

/// Locate the workspace root: walk up from the current directory until a
/// `Cargo.toml` containing a `[workspace]` table is found.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

fn load_waivers(root: &Path) -> Result<Vec<Waiver>, String> {
    let path = root.join("lint-waivers.toml");
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let waivers = parse_waivers(&text).map_err(|e| format!("lint-waivers.toml: {e}"))?;
    if waivers.len() > MAX_WAIVERS {
        return Err(format!(
            "lint-waivers.toml has {} entries; the budget is {MAX_WAIVERS} — fix sites instead \
             of waiving them",
            waivers.len()
        ));
    }
    Ok(waivers)
}

/// Recursively collect `.rs` files under `dir`, in sorted order for
/// deterministic reporting. Missing directories are fine (crates without a
/// `src/`, which cannot happen today, would simply contribute nothing).
fn collect_rs(
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((crate_name.to_string(), path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
