//! Workspace driver for `peercache-lint`.
//!
//! Walks every workspace member's `src/` tree (plus the root package's
//! `src/`), lints each `.rs` file, applies `lint-waivers.toml`, and exits
//! nonzero on any unwaived violation, stale waiver, or stale waiver
//! metadata.
//!
//! Flags:
//! - `--deep` — additionally run the semantic pass (item parser, call
//!   graph, rules T1/C1/A1) over the whole workspace; any parse failure
//!   is a hard error.
//! - `--json <path>` — write a machine-readable findings report
//!   (consumed by `repro lint`).
//! - `--budget-ms <n>` — fail if the whole run exceeds this wall-time
//!   budget (keeps the deep stage honest in `scripts/check.sh`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use peercache_lint::waivers::{current_pr_from_changes, stale_waivers};
use peercache_lint::{
    apply_waivers, dataflow, dead_registered_names, lint_source_with_registry, parse_waivers,
    parser, registry_from_names_source, semantic, Violation, Waiver,
};

/// All rule identifiers, for stable JSON report ordering.
const ALL_RULES: &[&str] = &["D1", "D2", "P1", "N1", "O1", "S1", "R1", "T1", "C1", "A1"];

struct Args {
    deep: bool,
    json: Option<PathBuf>,
    budget_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deep: false,
        json: None,
        budget_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deep" => args.deep = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(path));
            }
            "--budget-ms" => {
                let n = it.next().ok_or("--budget-ms requires a number")?;
                args.budget_ms = Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("--budget-ms: not a number: {n}"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("peercache-lint: usage error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("peercache-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let started = Instant::now();
    let root = workspace_root()?;
    let waivers = load_waivers(&root)?;

    // Waiver metadata staleness, judged against the PR currently in
    // flight per CHANGES.md.
    let changes = std::fs::read_to_string(root.join("CHANGES.md")).unwrap_or_default();
    let current_pr = current_pr_from_changes(&changes);
    let stale = stale_waivers(&waivers, current_pr);
    for (_, msg) in &stale {
        eprintln!("peercache-lint: {msg}");
    }

    // Rule O1's closed vocabulary: the string literals of the obs name
    // registry. A missing or empty registry is a hard error — it would
    // silently disarm the rule.
    let names_path = root.join("crates/obs/src/names.rs");
    let names_src = std::fs::read_to_string(&names_path)
        .map_err(|e| format!("reading {}: {e}", names_path.display()))?;
    let registry = registry_from_names_source(&names_src);
    if registry.is_empty() {
        return Err(format!(
            "{} yielded no registered names; rule O1 cannot run",
            names_path.display()
        ));
    }

    let mut files: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in &members {
        let name = member
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-utf8 crate dir under {}", crates_dir.display()))?
            .to_string();
        collect_rs(&member.join("src"), &name, &mut files)?;
    }
    // The root `peercache` package (library + repro binary).
    collect_rs(&root.join("src"), "peercache", &mut files)?;

    let mut violations = Vec::new();
    // Every non-test string literal outside names.rs, for reverse-O1.
    let mut literal_usages: BTreeSet<String> = BTreeSet::new();
    let names_rel = "crates/obs/src/names.rs";
    let mut sources: Vec<(String, String, String)> = Vec::new(); // (crate, rel, source)
    for (crate_name, path) in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = rel_path(&root, path);
        violations.extend(lint_source_with_registry(
            crate_name,
            &rel,
            &source,
            Some(&registry),
        ));
        if rel != names_rel {
            let toks = peercache_lint::lexer::tokenize(&source);
            let in_test = peercache_lint::lexer::mark_test_regions(&toks);
            for (t, &test) in toks.iter().zip(&in_test) {
                if let (peercache_lint::lexer::TokKind::Str(s), false) = (&t.kind, test) {
                    literal_usages.insert(s.clone());
                }
            }
        }
        sources.push((crate_name.clone(), rel, source));
    }
    violations.extend(dead_registered_names(
        &names_src,
        names_rel,
        &literal_usages,
    ));
    let scanned = files.len();

    // Deep pass: parse every file into items, build the call graph, run
    // the semantic rules. Parse failures are hard errors — the parser's
    // coverage over this workspace is itself an invariant.
    let mut functions = 0usize;
    if args.deep {
        let mut parsed = Vec::with_capacity(sources.len());
        let mut parse_failures = Vec::new();
        for (crate_name, rel, source) in &sources {
            let file = parser::parse_file(crate_name, rel, source);
            for err in &file.errors {
                parse_failures.push(format!("{rel}: {err}"));
            }
            parsed.push(file);
        }
        if !parse_failures.is_empty() {
            for f in &parse_failures {
                eprintln!("peercache-lint: parse failure: {f}");
            }
            return Err(format!(
                "{} parse failure(s); the item parser must cover the whole workspace",
                parse_failures.len()
            ));
        }
        let ws = dataflow::Workspace::build(parsed);
        functions = ws.nodes.len();
        violations.extend(semantic::analyze(&ws));
    }

    let report = apply_waivers(violations, &waivers);
    for v in &report.unwaived {
        eprintln!(
            "peercache-lint: {}:{}: [{}] {}\n    {}",
            v.file, v.line, v.rule, v.message, v.snippet
        );
        for step in &v.trace {
            eprintln!("    flow: {step}");
        }
    }
    // In the fast token pass the semantic rules never run, so their
    // waivers legitimately match nothing — only deep mode may call
    // them stale.
    let unused: Vec<usize> = report
        .unused
        .iter()
        .copied()
        .filter(|&idx| args.deep || !semantic::SEMANTIC_RULES.contains(&waivers[idx].rule.as_str()))
        .collect();
    for &idx in &unused {
        let w = &waivers[idx];
        eprintln!(
            "peercache-lint: stale waiver #{} ({} in {}, contains {:?}) matched nothing; \
             remove it from lint-waivers.toml",
            idx + 1,
            w.rule,
            w.file,
            w.contains
        );
    }

    let duration_ms = started.elapsed().as_millis() as u64;
    if let Some(path) = &args.json {
        write_json_report(
            path,
            args.deep,
            duration_ms,
            scanned,
            functions,
            &report,
            &waivers,
        )?;
    }

    let mut ok = report.unwaived.is_empty() && unused.is_empty() && stale.is_empty();
    if let Some(budget) = args.budget_ms {
        if duration_ms > budget {
            eprintln!("peercache-lint: run took {duration_ms} ms, over the {budget} ms budget");
            ok = false;
        }
    }
    println!(
        "peercache-lint: {scanned} files scanned{}, {} violation(s), {} waived, {} stale \
         waiver(s), {duration_ms} ms",
        if args.deep {
            format!(", {functions} functions analyzed")
        } else {
            String::new()
        },
        report.unwaived.len(),
        report.waived,
        unused.len() + stale.len()
    );
    Ok(ok)
}

/// Minimal JSON string escaping for the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(v: &Violation, waived: bool, justification: Option<&str>) -> String {
    let trace = v
        .trace
        .iter()
        .map(|t| format!("\"{}\"", json_escape(t)))
        .collect::<Vec<_>>()
        .join(",");
    let just = justification
        .map(|j| format!(",\"justification\":\"{}\"", json_escape(j)))
        .unwrap_or_default();
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\
         \"message\":\"{}\",\"waived\":{waived},\"trace\":[{trace}]{just}}}",
        v.rule,
        json_escape(&v.file),
        v.line,
        json_escape(&v.snippet),
        json_escape(&v.message),
    )
}

/// Write the machine-readable findings report consumed by `repro lint`.
fn write_json_report(
    path: &Path,
    deep: bool,
    duration_ms: u64,
    files: usize,
    functions: usize,
    report: &peercache_lint::WaiverReport,
    waivers: &[Waiver],
) -> Result<(), String> {
    let mut per_rule: Vec<(&str, usize, usize)> = ALL_RULES.iter().map(|r| (*r, 0, 0)).collect();
    let mut bump = |rule: &str, waived: bool| {
        if let Some(slot) = per_rule.iter_mut().find(|(r, _, _)| *r == rule) {
            slot.1 += 1;
            if waived {
                slot.2 += 1;
            }
        }
    };
    for v in &report.unwaived {
        bump(v.rule, false);
    }
    for (v, _) in &report.waived_violations {
        bump(v.rule, true);
    }
    let rules = per_rule
        .iter()
        .map(|(r, total, waived)| format!("\"{r}\":{{\"total\":{total},\"waived\":{waived}}}"))
        .collect::<Vec<_>>()
        .join(",");
    let mut findings: Vec<String> = report
        .unwaived
        .iter()
        .map(|v| finding_json(v, false, None))
        .collect();
    findings.extend(
        report
            .waived_violations
            .iter()
            .map(|(v, idx)| finding_json(v, true, Some(waivers[*idx].justification.as_str()))),
    );
    let body = format!(
        "{{\"schema\":\"peercache-lint/1\",\"deep\":{deep},\"duration_ms\":{duration_ms},\
         \"files\":{files},\"functions\":{functions},\"rules\":{{{rules}}},\
         \"findings\":[{}]}}\n",
        findings.join(",")
    );
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, body).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Locate the workspace root: walk up from the current directory until a
/// `Cargo.toml` containing a `[workspace]` table is found.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

fn load_waivers(root: &Path) -> Result<Vec<Waiver>, String> {
    let path = root.join("lint-waivers.toml");
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse_waivers(&text).map_err(|e| format!("lint-waivers.toml: {e}"))
}

/// Recursively collect `.rs` files under `dir`, in sorted order for
/// deterministic reporting. Missing directories are fine (crates without a
/// `src/`, which cannot happen today, would simply contribute nothing).
fn collect_rs(
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((crate_name.to_string(), path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
