//! Semantic cross-file rules T1 / C1 / A1 over the call graph.
//!
//! These are the rules the token scanner cannot express: each one
//! needs to know where a value *came from* or where control *goes*,
//! across function and file boundaries.
//!
//! - **T1 determinism taint** — hash-iteration-order, ambient-time,
//!   and thread-identity sources must not reach ordering-sensitive
//!   sinks (`state_digest`, trace/JSONL emission via the `obs` layer,
//!   cross-shard merge application). Taint propagates callee → caller
//!   through resolved call edges; `MonotonicClock::{now_us,elapsed_us}`,
//!   `Parallelism::threads`, and `Stopwatch::{start,lap_us}` are
//!   sanctioned injection boundaries that consume their own taint, and
//!   a function that sorts its data (`.sort*()` / `BTreeMap` /
//!   `BTreeSet`) sanitizes the hash-order class at function
//!   granularity.
//! - **C1 shard-escape** — a closure handed to a thread fan-out
//!   (`s.spawn(..)` under `thread::scope` / `thread::spawn`) must not
//!   capture `&mut` state declared outside itself, must not mutate
//!   shard state directly (`arena_mut` / `apply_cross`), and must not
//!   reach observability emission — the JSONL stream and span counters
//!   are shared ordering-sensitive state — unless the emitting call is
//!   wrapped in `obs::with_quiet`. Calls to caller-supplied `Fn`
//!   parameters inside a spawn body are unresolvable and therefore
//!   carry the same quiet-wrapping obligation.
//! - **A1 arithmetic audit** — inside the downward call closure of any
//!   digest function, raw `+` / `*` / `<<` on integers must be
//!   `wrapping_*` / `checked_*` (or both-literal, which the compiler
//!   const-folds and bounds-checks). Silent release-mode wraparound in
//!   a digest fold diverges from the debug-profile behavior the
//!   determinism suites test.

use crate::dataflow::{taint_names, Witness, Workspace, TAINT_HASH, TAINT_THREAD, TAINT_TIME};
use crate::lexer::{Tok, TokKind};
use crate::rules::Violation;

/// Crates whose sinks are exempt from T1: `bench` timestamps its own
/// artifacts by design and `lint` quotes sources in fixtures.
const T1_EXEMPT_CRATES: &[&str] = &["bench", "lint"];
/// Crates exempt from C1: `obs` owns the emission machinery itself,
/// `bench`/`lint` run outside the determinism envelope.
const C1_EXEMPT_CRATES: &[&str] = &["obs", "bench", "lint"];
/// Crates in scope for A1's digest-path arithmetic audit.
const A1_CRATES: &[&str] = &["core", "dist", "graph"];

/// Sink-primitive function names for T1: the digest fold, the JSONL
/// writer, and the cross-shard merge application.
const SINK_PRIMITIVES: &[&str] = &["state_digest", "write_record", "apply_cross"];

/// Sanctioned taint boundaries `(self_type, name)`: the injectable
/// clock, the parallelism knob, and the obs phase stopwatch. Their
/// ambient reads are the point — tests freeze the first two
/// (`MonotonicClock::Fixed`, `Parallelism::Threads`), and `Stopwatch`
/// laps flow only into span *fields* (telemetry payload, like
/// `write_record`'s `ts_us`), never into program state.
/// The rules this module produces. Waivers for these rules are only
/// stale-checked in deep mode — the fast token pass never runs them,
/// so their waivers legitimately match nothing there.
pub const SEMANTIC_RULES: &[&str] = &["T1", "C1", "A1"];

const SANCTIONED: &[(&str, &str)] = &[
    ("MonotonicClock", "now_us"),
    ("MonotonicClock", "elapsed_us"),
    ("Parallelism", "threads"),
    ("Stopwatch", "start"),
    ("Stopwatch", "lap_us"),
];

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

fn violation(
    ws: &Workspace,
    node: usize,
    rule: &'static str,
    line: u32,
    message: String,
    trace: Vec<String>,
) -> Violation {
    let file = &ws.files[ws.nodes[node].file];
    Violation {
        rule,
        file: file.rel_path.clone(),
        line,
        snippet: file.snippet(line),
        message,
        trace,
    }
}

/// How a node qualifies as a T1 sink, if it does.
struct SinkOp {
    desc: String,
}

/// Run all semantic rules over the workspace graph.
#[must_use]
pub fn analyze(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();

    // ---- Shared per-node facts ------------------------------------
    let n = ws.nodes.len();
    let mut sanctioned = vec![false; n];
    for (i, node) in ws.nodes.iter().enumerate() {
        if let Some(t) = &node.self_type {
            sanctioned[i] = SANCTIONED
                .iter()
                .any(|&(st, nm)| st == t && nm == node.name);
        }
    }

    // T1 sink-ops: own emission site, primitive name, or a direct call
    // edge to a primitive-named / emitting node.
    let mut sink_op: Vec<Option<SinkOp>> = Vec::with_capacity(n);
    for i in 0..n {
        let node = &ws.nodes[i];
        let op = if let Some(site) = ws.emissions[i].first() {
            Some(SinkOp {
                desc: format!("emits via `{}` (line {})", site.what, site.line),
            })
        } else if SINK_PRIMITIVES.contains(&node.name.as_str()) {
            Some(SinkOp {
                desc: format!("is the ordering-sensitive primitive `{}`", node.name),
            })
        } else {
            ws.calls[i]
                .iter()
                .find(|c| {
                    SINK_PRIMITIVES.contains(&ws.nodes[c.callee].name.as_str())
                        || !ws.emissions[c.callee].is_empty()
                })
                .map(|c| SinkOp {
                    desc: format!(
                        "feeds sink `{}` (line {})",
                        ws.nodes[c.callee].qualified(),
                        c.line
                    ),
                })
        };
        sink_op.push(op);
    }

    // ---- T1: determinism taint ------------------------------------
    let mut seeds: Vec<(u8, Option<u32>)> = vec![(0, None); n];
    let mut allow: Vec<u8> = vec![TAINT_HASH | TAINT_TIME | TAINT_THREAD; n];
    for i in 0..n {
        let toks = &ws.files[ws.nodes[i].file].toks;
        let mut mask = 0u8;
        let mut line = None;
        let mut sanitizes = false;
        let mut ranges: Vec<(usize, usize)> = ws.segments[i].clone();
        if let Some(sig) = ws.nodes[i].sig {
            ranges.push(sig);
        }
        for &(start, end) in &ranges {
            let mut j = start;
            while j < end {
                if let Some(id) = ident_at(toks, j) {
                    let class = match id {
                        "HashMap" | "HashSet" | "RandomState" => TAINT_HASH,
                        "Instant" | "SystemTime" | "thread_rng" => TAINT_TIME,
                        "ThreadId" | "available_parallelism" => TAINT_THREAD,
                        "current"
                            if j >= 3
                                && ident_at(toks, j - 3) == Some("thread")
                                && punct_at(toks, j - 2, ':')
                                && punct_at(toks, j - 1, ':') =>
                        {
                            TAINT_THREAD
                        }
                        _ => 0,
                    };
                    if class != 0 {
                        mask |= class;
                        line.get_or_insert(toks[j].line);
                    }
                    if (id.starts_with("sort") && j > 0 && punct_at(toks, j - 1, '.'))
                        || id == "BTreeMap"
                        || id == "BTreeSet"
                    {
                        sanitizes = true;
                    }
                }
                j += 1;
            }
        }
        if sanitizes {
            allow[i] &= !TAINT_HASH;
        }
        seeds[i] = (mask, line);
    }
    let cut = |callee: usize| sanctioned[callee] || sink_op[callee].is_some();
    let (taint, wit) = ws.propagate(&seeds, &allow, &cut);
    for i in 0..n {
        let node = &ws.nodes[i];
        if node.is_test || T1_EXEMPT_CRATES.contains(&ws.crate_of(i)) {
            continue;
        }
        let (Some(op), mask) = (&sink_op[i], taint[i]) else {
            continue;
        };
        if mask == 0 {
            continue;
        }
        let bit = (0..3).find(|b| mask & (1 << b) != 0).unwrap_or(0);
        out.push(violation(
            ws,
            i,
            "T1",
            node.line,
            format!(
                "`{}` {} while carrying {} taint; cut the flow at a sanctioned \
                 boundary (injected `MonotonicClock`, `Parallelism::threads`) or \
                 sanitize with a sort/BTree collection before the sink",
                node.qualified(),
                op.desc,
                taint_names(mask),
            ),
            ws.trace(i, bit, &wit),
        ));
    }

    // ---- C1: shard-escape -----------------------------------------
    // Emission reachability over resolved edges: a node reaches
    // emission when it emits directly, is the JSONL writer, or calls a
    // node that does (transitively). No boundaries: quiet-wrapping is
    // judged at each spawn-site call below, not inside the graph.
    let mut em_seeds: Vec<(u8, Option<u32>)> = vec![(0, None); n];
    for (i, seed) in em_seeds.iter_mut().enumerate() {
        if let Some(site) = ws.emissions[i].first() {
            *seed = (1, Some(site.line));
        } else if ws.nodes[i].name == "write_record" {
            *seed = (1, Some(ws.nodes[i].line));
        }
    }
    let em_allow = vec![1u8; n];
    let (reaches_emission, em_wit) = ws.propagate(&em_seeds, &em_allow, &|_| false);

    for i in 0..n {
        let node = &ws.nodes[i];
        if node.is_test || C1_EXEMPT_CRATES.contains(&ws.crate_of(i)) {
            continue;
        }
        let toks = &ws.files[node.file].toks;
        for &(start, end) in &ws.segments[i] {
            let mut j = start;
            while j < end {
                if ident_at(toks, j) == Some("spawn") && punct_at(toks, j + 1, '(') {
                    let dotted = j > 0 && punct_at(toks, j - 1, '.');
                    let pathed = j >= 3
                        && punct_at(toks, j - 1, ':')
                        && punct_at(toks, j - 2, ':')
                        && ident_at(toks, j - 3) == Some("thread");
                    if dotted || pathed {
                        if let Some((body, params)) = spawn_closure(toks, j + 1, end) {
                            check_spawn_body(
                                ws,
                                i,
                                toks,
                                body,
                                &params,
                                &reaches_emission,
                                &em_wit,
                                &mut out,
                            );
                            j = body.1;
                            continue;
                        }
                    }
                }
                j += 1;
            }
        }
    }

    // ---- A1: arithmetic audit -------------------------------------
    // Downward closure from digest roots, with predecessor links for
    // the flow trace.
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut in_digest = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for (i, node) in ws.nodes.iter().enumerate() {
        if !node.is_test
            && !node.is_closure
            && node.name.contains("digest")
            && A1_CRATES.contains(&ws.crate_of(i))
        {
            in_digest[i] = true;
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        for call in &ws.calls[i] {
            if !in_digest[call.callee] && !ws.nodes[call.callee].is_test {
                in_digest[call.callee] = true;
                pred[call.callee] = Some((i, call.line));
                queue.push(call.callee);
            }
        }
    }
    for (i, &on_path) in in_digest.iter().enumerate() {
        if !on_path || ws.nodes[i].is_test || !A1_CRATES.contains(&ws.crate_of(i)) {
            continue;
        }
        let toks = &ws.files[ws.nodes[i].file].toks;
        for &(start, end) in &ws.segments[i] {
            let mut j = start;
            while j < end {
                if let Some(op) = raw_int_op(toks, j, end) {
                    let mut trace = vec![format!(
                        "fn `{}` is on a digest path",
                        ws.nodes[i].qualified()
                    )];
                    let mut cur = i;
                    let mut guard = 0;
                    while let Some((p, line)) = pred[cur] {
                        guard += 1;
                        if guard > 32 {
                            break;
                        }
                        trace.push(format!(
                            "called from `{}` at {}:{line}",
                            ws.nodes[p].qualified(),
                            ws.path_of(p),
                        ));
                        cur = p;
                    }
                    out.push(violation(
                        ws,
                        i,
                        "A1",
                        toks[j].line,
                        format!(
                            "raw `{op}` on an integer inside digest path `{}`; use \
                             `wrapping_*`/`checked_*` so release-mode wraparound \
                             cannot silently diverge from the checked profiles",
                            ws.nodes[i].qualified(),
                        ),
                        trace,
                    ));
                    if op == "<<" {
                        j += 2;
                        continue;
                    }
                }
                j += 1;
            }
        }
    }

    out.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
    out.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
    });
    out
}

/// Parse the closure argument of a spawn call whose `(` sits at
/// `open`. Returns the closure body token range and its parameter
/// names, or `None` when the argument is not a literal closure.
fn spawn_closure(toks: &[Tok], open: usize, limit: usize) -> Option<((usize, usize), Vec<String>)> {
    // Matching `)` of the spawn call.
    let mut depth = 0usize;
    let mut close = None;
    let mut i = open;
    while i < toks.len() {
        if punct_at(toks, i, '(') {
            depth += 1;
        } else if punct_at(toks, i, ')') {
            depth -= 1;
            if depth == 0 {
                close = Some(i);
                break;
            }
        }
        i += 1;
    }
    let close = close?.min(limit);
    let mut j = open + 1;
    if ident_at(toks, j) == Some("move") {
        j += 1;
    }
    if !punct_at(toks, j, '|') {
        return None;
    }
    // Parameters up to the closing `|`.
    let (params, after) = if punct_at(toks, j + 1, '|') {
        (Vec::new(), j + 2)
    } else {
        let mut p = j + 1;
        let mut d = 0i32;
        let mut names = Vec::new();
        let mut closed = None;
        while p < close {
            match &toks[p].kind {
                TokKind::Punct('(' | '[' | '<') => d += 1,
                TokKind::Punct(')' | ']' | '>') => d -= 1,
                TokKind::Punct('|') if d == 0 => {
                    closed = Some(p);
                    break;
                }
                TokKind::Ident(id) if id != "mut" && id != "ref" => names.push(id.clone()),
                _ => {}
            }
            p += 1;
        }
        (names, closed? + 1)
    };
    let body = if punct_at(toks, after, '{') {
        let mut d = 0usize;
        let mut p = after;
        let mut end = None;
        while p < toks.len() {
            if punct_at(toks, p, '{') {
                d += 1;
            } else if punct_at(toks, p, '}') {
                d -= 1;
                if d == 0 {
                    end = Some(p);
                    break;
                }
            }
            p += 1;
        }
        (after + 1, end?.min(close))
    } else {
        (after, close)
    };
    Some((body, params))
}

/// Check one spawn-closure body for shard-escape violations.
#[allow(clippy::too_many_arguments)]
fn check_spawn_body(
    ws: &Workspace,
    node: usize,
    toks: &[Tok],
    body: (usize, usize),
    params: &[String],
    reaches_emission: &[u8],
    em_wit: &[[Option<Witness>; 3]],
    out: &mut Vec<Violation>,
) {
    let (start, end) = body;
    // Locals declared inside the body: `let [mut] name`.
    let mut locals: Vec<&str> = Vec::new();
    let mut j = start;
    while j < end {
        if ident_at(toks, j) == Some("let") {
            let mut k = j + 1;
            if ident_at(toks, k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = ident_at(toks, k) {
                locals.push(name);
            }
        }
        j += 1;
    }
    // `obs::with_quiet(...)` wrapped ranges inside the body.
    let mut quiet: Vec<(usize, usize)> = Vec::new();
    j = start;
    while j < end {
        if ident_at(toks, j) == Some("with_quiet") && punct_at(toks, j + 1, '(') {
            let mut d = 0usize;
            let mut k = j + 1;
            while k < end {
                if punct_at(toks, k, '(') {
                    d += 1;
                } else if punct_at(toks, k, ')') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            quiet.push((j + 1, k));
        }
        j += 1;
    }
    let in_quiet = |t: usize| quiet.iter().any(|&(a, b)| t > a && t < b);

    j = start;
    while j < end {
        // `&mut name` capturing an outer binding.
        if punct_at(toks, j, '&') && ident_at(toks, j + 1) == Some("mut") {
            if let Some(name) = ident_at(toks, j + 2) {
                if name != "self" && !params.iter().any(|p| p == name) && !locals.contains(&name) {
                    out.push(violation(
                        ws,
                        node,
                        "C1",
                        toks[j].line,
                        format!(
                            "fan-out closure in `{}` takes `&mut {name}` on a binding \
                             declared outside the closure; worker threads must only \
                             write their own result slot — route shared-state changes \
                             through the owning shard's serial merge",
                            ws.nodes[node].qualified(),
                        ),
                        vec![format!(
                            "spawn body in `{}` at {}:{}",
                            ws.nodes[node].qualified(),
                            ws.path_of(node),
                            toks[j].line
                        )],
                    ));
                }
            }
        }
        // Direct shard mutation inside a worker thread.
        if let Some(id @ ("arena_mut" | "apply_cross")) = ident_at(toks, j) {
            if punct_at(toks, j + 1, '(') {
                out.push(violation(
                    ws,
                    node,
                    "C1",
                    toks[j].line,
                    format!(
                        "`{id}(...)` inside a fan-out closure in `{}`; shard state \
                         must only be mutated from the owning shard's deterministic \
                         merge, never from a worker thread",
                        ws.nodes[node].qualified(),
                    ),
                    Vec::new(),
                ));
            }
        }
        j += 1;
    }

    // Emission escapes: direct sites, resolved emitting calls, and
    // unresolvable caller-supplied `Fn` parameter calls.
    for site in &ws.emissions[node] {
        if site.tok >= start && site.tok < end && !in_quiet(site.tok) {
            out.push(violation(
                ws,
                node,
                "C1",
                site.line,
                format!(
                    "`{}` emitted from inside a fan-out closure in `{}`; the JSONL \
                     stream and span counters are shared ordering-sensitive state — \
                     wrap the call in `obs::with_quiet`",
                    site.what,
                    ws.nodes[node].qualified(),
                ),
                Vec::new(),
            ));
        }
    }
    for call in &ws.calls[node] {
        if call.tok >= start
            && call.tok < end
            && reaches_emission[call.callee] != 0
            && !in_quiet(call.tok)
        {
            out.push(violation(
                ws,
                node,
                "C1",
                call.line,
                format!(
                    "fan-out closure in `{}` calls `{}`, which reaches observability \
                     emission; wrap the call in `obs::with_quiet` so worker threads \
                     cannot interleave the JSONL stream or skew span counts",
                    ws.nodes[node].qualified(),
                    ws.nodes[call.callee].qualified(),
                ),
                ws.trace(call.callee, 0, em_wit),
            ));
        }
    }
    for pc in &ws.param_calls[node] {
        if pc.tok >= start && pc.tok < end && !in_quiet(pc.tok) {
            out.push(violation(
                ws,
                node,
                "C1",
                pc.line,
                format!(
                    "caller-supplied closure `{}` invoked inside a fan-out closure \
                     in `{}`; it cannot be resolved statically, so it must be wrapped \
                     in `obs::with_quiet` to discharge the emission obligation",
                    pc.param,
                    ws.nodes[node].qualified(),
                ),
                Vec::new(),
            ));
        }
    }
}

/// Classify the token at `j` as a raw integer arithmetic operator for
/// A1 (`+`, `*`, or `<<`), applying the documented escapes: float
/// neighbors, both-literal operands, unary/deref `*`, and trait-bound
/// `+` shapes.
fn raw_int_op(toks: &[Tok], j: usize, end: usize) -> Option<&'static str> {
    let floaty = |k: usize| matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Float(_)));
    let int_lit = |k: usize| matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Int));
    match toks.get(j).map(|t| &t.kind) {
        Some(TokKind::Punct('<')) if j + 1 < end && punct_at(toks, j + 1, '<') => {
            // `<<`: skip when both operands are integer literals.
            if j > 0 && int_lit(j - 1) && int_lit(j + 2) {
                return None;
            }
            if j > 0 && (floaty(j - 1) || floaty(j + 2)) {
                return None;
            }
            Some("<<")
        }
        Some(TokKind::Punct('+')) => {
            if j == 0 || floaty(j - 1) || floaty(j + 1) {
                return None;
            }
            if int_lit(j - 1) && int_lit(j + 1) {
                return None;
            }
            // Operand must precede: ident / literal / `)` / `]`.
            let prev_operand = matches!(
                toks[j - 1].kind,
                TokKind::Ident(_) | TokKind::Int | TokKind::Punct(')') | TokKind::Punct(']')
            );
            if !prev_operand {
                return None;
            }
            // Trait-bound shape `Fn() + Send` / `impl Trait + Sync`.
            if let Some(TokKind::Ident(next)) = toks.get(j + 1).map(|t| &t.kind) {
                if next.starts_with(char::is_uppercase) {
                    return None;
                }
            }
            Some("+")
        }
        Some(TokKind::Punct('*')) => {
            if j == 0 || floaty(j - 1) || floaty(j + 1) {
                return None;
            }
            if int_lit(j - 1) && int_lit(j + 1) {
                return None;
            }
            // Multiplication needs a value on the left; anything else
            // (`(`, `=`, `,`, `&`, `;`, `{`, another op) is a deref,
            // glob, or raw-pointer type position.
            let prev_operand = matches!(
                toks[j - 1].kind,
                TokKind::Ident(_) | TokKind::Int | TokKind::Punct(')') | TokKind::Punct(']')
            );
            if !prev_operand {
                return None;
            }
            Some("*")
        }
        _ => None,
    }
}
