//! `peercache-lint`: zero-dependency domain-rule linter for the workspace.
//!
//! Enforces the invariants that the repo's headline guarantees
//! (byte-identical replans, deterministic churn replays, panic-free
//! distributed bidding, a closed observability vocabulary, sub-quadratic
//! planning, shard-isolated mutation) rest on.
//!
//! Token-level rules (fast pass, every check):
//!
//! | Rule | Statement | Scope |
//! |------|-----------|-------|
//! | D1 | no `HashMap`/`HashSet` | `core`, `dist`, `graph`, `lp` |
//! | D2 | no `Instant`/`SystemTime`/`thread_rng` | everywhere except `obs`, `bench` |
//! | P1 | no `unwrap`/`expect`/`panic!`-family macros | `crates/dist/src/**`, `core::world` |
//! | N1 | no direct `==`/`!=` on cost-valued f64 | `core`, `dist`, `graph` (helpers in `core::costs` exempt) |
//! | O1 | `obs::span!`/`event!`/counter/gauge/histogram/`TimeSeries` names must be string literals registered in `obs::names`; registered names must also be emitted somewhere | everywhere except `obs`, `lint` |
//! | S1 | no `AllPairsPaths::compute`/`compute_with` call sites | everywhere except `graph::paths`, `graph::oracle`, `core::costs`, `core::scoped` |
//! | R1 | no `arena_mut(...)`/`apply_cross(...)` call sites (shard state mutates only via `CrossShardEvent`s through the router) | everywhere except `core::shard`, `core::sharded` |
//!
//! Semantic rules (`--deep` pass: item parser + call graph + dataflow,
//! see [`parser`], [`dataflow`], [`semantic`]):
//!
//! | Rule | Statement | Scope |
//! |------|-----------|-------|
//! | T1 | hash-order / ambient-time / thread-identity taint must not reach ordering-sensitive sinks (`state_digest`, JSONL emission, cross-shard merge) across function boundaries; injected clocks and sort/BTree sanitizers cut the flow | sinks everywhere except `bench`, `lint` |
//! | C1 | closures under a thread fan-out must not capture outer `&mut` state, mutate shard state, or reach observability emission outside `obs::with_quiet` | everywhere except `obs`, `bench`, `lint` |
//! | A1 | raw `+`/`*`/`<<` on integers in the downward call closure of any digest function must be `wrapping_*`/`checked_*` | `core`, `dist`, `graph` |
//!
//! The pass is dependency-free (no `syn`, no network): comments, strings,
//! and test-only regions never fire. Violations are suppressed only
//! through the committed `lint-waivers.toml`, which requires a per-site
//! justification plus `added_in`/`re_audit_after` PR stamps; stale or
//! over-budget waivers fail the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;
pub mod waivers;

pub use rules::{NameRegistry, Violation};
pub use waivers::{apply_waivers, parse_waivers, Waiver, WaiverReport};

/// Rule O1, reverse direction: names in the registry that no non-test
/// source outside the registry file ever mentions are dead vocabulary.
///
/// `usages` holds every string literal seen outside test regions in the
/// workspace (excluding `names.rs` itself); `names_src` is the registry
/// source, re-scanned here so each dead name can be reported on its own
/// definition line.
pub fn dead_registered_names(
    names_src: &str,
    names_rel_path: &str,
    usages: &std::collections::BTreeSet<String>,
) -> Vec<Violation> {
    let toks = lexer::tokenize(names_src);
    let in_test = lexer::mark_test_regions(&toks);
    let lines: Vec<&str> = names_src.lines().collect();
    toks.iter()
        .zip(&in_test)
        .filter_map(|(t, &test)| match (&t.kind, test) {
            (lexer::TokKind::Str(name), false) if !usages.contains(name) => Some(Violation {
                rule: "O1",
                file: names_rel_path.to_string(),
                line: t.line,
                snippet: lines
                    .get(t.line as usize - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                message: format!(
                    "registered name \"{name}\" is never emitted by any non-test code; \
                     remove it from `REGISTERED_NAMES` — a closed vocabulary only stays \
                     trustworthy if every entry is live"
                ),
                trace: Vec::new(),
            }),
            _ => None,
        })
        .collect()
}

/// Lint a single source file given as a string, without an O1 registry
/// (rules D1/D2/P1/N1 only).
///
/// `crate_name` is the workspace member (`core`, `dist`, ..., `peercache`
/// for the root package); `rel_path` is the workspace-relative path with
/// `/` separators.
pub fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Violation> {
    lint_source_with_registry(crate_name, rel_path, source, None)
}

/// Lint a single source file, with rule O1 armed when `registry` is
/// provided.
pub fn lint_source_with_registry(
    crate_name: &str,
    rel_path: &str,
    source: &str,
    registry: Option<&NameRegistry>,
) -> Vec<Violation> {
    let toks = lexer::tokenize(source);
    let in_test = lexer::mark_test_regions(&toks);
    let lines: Vec<&str> = source.lines().collect();
    rules::check_tokens(crate_name, rel_path, &toks, &in_test, &lines, registry)
}

/// Build the O1 name registry from the source of `crates/obs/src/names.rs`:
/// every plain string literal outside test regions is a registered name.
///
/// Parsing the literals (rather than linking against `obs`) keeps the
/// linter dependency-free and means the registry file is the single
/// source of truth for both the runtime `is_registered` check and lint.
pub fn registry_from_names_source(source: &str) -> NameRegistry {
    let toks = lexer::tokenize(source);
    let in_test = lexer::mark_test_regions(&toks);
    NameRegistry::from_names(toks.iter().zip(&in_test).filter_map(|(t, test)| {
        match (&t.kind, test) {
            (lexer::TokKind::Str(s), false) => Some(s.clone()),
            _ => None,
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexer::{tokenize, TokKind};

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r##"
            // HashMap in a comment
            /* Instant in a block */
            fn f() { let s = "HashMap"; let r = r#"SystemTime"#; }
        "##;
        let v = lint_source("core", "crates/core/src/x.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn lifetimes_do_not_break_lexing() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident("str".into())));
    }

    #[test]
    fn float_literals_are_classified() {
        let toks = tokenize("let x = 1.5 + 2e-9 + 3 + 0xff + 1f64;");
        let floats = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Float(_)))
            .count();
        let ints = toks.iter().filter(|t| t.kind == TokKind::Int).count();
        assert_eq!(floats, 3, "{toks:?}");
        assert_eq!(ints, 2, "{toks:?}");
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            pub fn prod() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let _: Option<u8> = None; let _ = None::<u8>.unwrap(); }
            }
        "#;
        let v = lint_source("dist", "crates/dist/src/engine.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn unwrap_or_variants_do_not_fire_p1() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).min(x.unwrap_or_default()) }";
        let v = lint_source("dist", "crates/dist/src/engine.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn node_id_equality_does_not_fire_n1() {
        let src = "pub fn f(i: usize, j: usize) -> bool { i == j }";
        let v = lint_source("core", "crates/core/src/x.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    fn o1_registry() -> NameRegistry {
        registry_from_names_source(
            r#"pub const REGISTERED_NAMES: &[&str] = &["dist.round", "world.components"];"#,
        )
    }

    #[test]
    fn registry_parses_literals_outside_tests() {
        let reg = registry_from_names_source(
            r#"
            pub const REGISTERED_NAMES: &[&str] = &["a.b", "c.d"];
            #[cfg(test)]
            mod tests { const SCRATCH: &str = "test.scratch"; }
            "#,
        );
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("a.b") && reg.contains("c.d"));
        assert!(!reg.contains("test.scratch"));
    }

    #[test]
    fn o1_accepts_registered_literal_names() {
        let reg = o1_registry();
        let src = r#"
            pub fn f() {
                let _s = obs::span!("dist.round", chunk = 3);
                obs::event!("dist.round", fate = "ok");
                obs::counter("dist.round", 1);
                let _t = obs::TimeSeries::new("world.components");
            }
        "#;
        let v = lint_source_with_registry("dist", "crates/dist/src/x.rs", src, Some(&reg));
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn o1_fires_on_unregistered_name() {
        let reg = o1_registry();
        let src = r#"pub fn f() { obs::counter("dist.mystery", 1); }"#;
        let v = lint_source_with_registry("dist", "crates/dist/src/x.rs", src, Some(&reg));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "O1");
        assert!(v[0].message.contains("dist.mystery"), "{}", v[0].message);
    }

    #[test]
    fn o1_fires_on_non_literal_name() {
        let reg = o1_registry();
        let src = r#"pub fn f(name: &'static str) { let _s = obs::span!(name); }"#;
        let v = lint_source_with_registry("dist", "crates/dist/src/x.rs", src, Some(&reg));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "O1");
        assert!(v[0].message.contains("string literal"), "{}", v[0].message);
    }

    #[test]
    fn o1_covers_bare_timeseries_constructors() {
        let reg = o1_registry();
        let src = r#"pub fn f() { let _t = TimeSeries::with_capacity("nope", 8); }"#;
        let v = lint_source_with_registry("core", "crates/core/src/x.rs", src, Some(&reg));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "O1");
    }

    #[test]
    fn o1_exempts_obs_lint_and_test_regions() {
        let reg = o1_registry();
        let src = r#"pub fn f() { obs::counter("scratch", 1); }"#;
        for (krate, path) in [
            ("obs", "crates/obs/src/x.rs"),
            ("lint", "crates/lint/src/x.rs"),
        ] {
            let v = lint_source_with_registry(krate, path, src, Some(&reg));
            assert!(v.is_empty(), "{krate}: {v:?}");
        }
        let test_src = r#"
            #[cfg(test)]
            mod tests { fn t() { obs::counter("scratch", 1); } }
        "#;
        let v = lint_source_with_registry("dist", "crates/dist/src/x.rs", test_src, Some(&reg));
        assert!(v.is_empty(), "{v:?}");
        // Without a registry the rule is disarmed entirely.
        let v = lint_source("dist", "crates/dist/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
