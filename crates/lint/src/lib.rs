//! `peercache-lint`: zero-dependency domain-rule linter for the workspace.
//!
//! Enforces four invariants that the repo's headline guarantees (byte-identical
//! replans, deterministic churn replays, panic-free distributed bidding) rest
//! on:
//!
//! | Rule | Statement | Scope |
//! |------|-----------|-------|
//! | D1 | no `HashMap`/`HashSet` | `core`, `dist`, `graph`, `lp` |
//! | D2 | no `Instant`/`SystemTime`/`thread_rng` | everywhere except `obs`, `bench` |
//! | P1 | no `unwrap`/`expect`/`panic!`-family macros | `crates/dist/src/**`, `core::world` |
//! | N1 | no direct `==`/`!=` on cost-valued f64 | `core`, `dist`, `graph` (helpers in `core::costs` exempt) |
//!
//! The pass is token-level (no `syn`, no network): comments, strings, and
//! test-only regions never fire. Violations are suppressed only through the
//! committed `lint-waivers.toml`, which requires a per-site justification;
//! stale waivers fail the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod waivers;

pub use rules::Violation;
pub use waivers::{apply_waivers, parse_waivers, Waiver, WaiverReport};

/// Lint a single source file given as a string.
///
/// `crate_name` is the workspace member (`core`, `dist`, ..., `peercache`
/// for the root package); `rel_path` is the workspace-relative path with
/// `/` separators.
pub fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Violation> {
    let toks = lexer::tokenize(source);
    let in_test = lexer::mark_test_regions(&toks);
    let lines: Vec<&str> = source.lines().collect();
    rules::check_tokens(crate_name, rel_path, &toks, &in_test, &lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexer::{tokenize, TokKind};

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r##"
            // HashMap in a comment
            /* Instant in a block */
            fn f() { let s = "HashMap"; let r = r#"SystemTime"#; }
        "##;
        let v = lint_source("core", "crates/core/src/x.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn lifetimes_do_not_break_lexing() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident("str".into())));
    }

    #[test]
    fn float_literals_are_classified() {
        let toks = tokenize("let x = 1.5 + 2e-9 + 3 + 0xff + 1f64;");
        let floats = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Float(_)))
            .count();
        let ints = toks.iter().filter(|t| t.kind == TokKind::Int).count();
        assert_eq!(floats, 3, "{toks:?}");
        assert_eq!(ints, 2, "{toks:?}");
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            pub fn prod() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let _: Option<u8> = None; let _ = None::<u8>.unwrap(); }
            }
        "#;
        let v = lint_source("dist", "crates/dist/src/engine.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn unwrap_or_variants_do_not_fire_p1() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).min(x.unwrap_or_default()) }";
        let v = lint_source("dist", "crates/dist/src/engine.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn node_id_equality_does_not_fire_n1() {
        let src = "pub fn f(i: usize, j: usize) -> bool { i == j }";
        let v = lint_source("core", "crates/core/src/x.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }
}
