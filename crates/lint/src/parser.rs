//! A lightweight item-level Rust parser on top of [`crate::lexer`].
//!
//! This is not a full grammar: it recovers exactly the structure the
//! semantic rules (T1/C1/A1, see [`crate::semantic`]) need — function
//! items with their signature and body token ranges, the `impl`/`trait`
//! type a method belongs to, `use` declarations, and local closure
//! bindings inside function bodies. Everything else (expressions,
//! types, patterns) stays a flat token stream that the dataflow layer
//! scans positionally.
//!
//! The parser is total: it never fails, it records recoverable
//! confusion in [`ParsedFile::errors`] instead. The parse-coverage
//! self-test in `tests/semantic.rs` asserts that every `.rs` file in
//! the workspace parses with zero errors, so the approximations here
//! are pinned against the real code they must understand.

use crate::lexer::{mark_test_regions, tokenize, Tok, TokKind};

/// One parsed function item (free function, inherent/trait method, or a
/// default method in a trait definition).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// The `impl`/`trait` type the item is defined on, if any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[start, end)` of the signature: from the `fn`
    /// token up to (excluding) the body `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Token index range `[start, end)` strictly inside the body braces;
    /// `None` for body-less trait signatures.
    pub body: Option<(usize, usize)>,
    /// Parameter identifiers bound by the signature.
    pub params: Vec<String>,
    /// Whether the item sits in a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// Local `let name = |...| ...` closure bindings inside the body.
    pub closures: Vec<ClosureItem>,
}

impl FnItem {
    /// `Type::name` when the item has a self type, else the bare name.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `let name = |...| ...` binding inside a function body. Treated as
/// a pseudo-function so the call graph can flow through locally named
/// closures (e.g. the per-region `run` closure handed to a fan-out).
#[derive(Debug, Clone)]
pub struct ClosureItem {
    /// The binding name.
    pub name: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// Token index range `[start, end)` of the closure body.
    pub body: (usize, usize),
    /// Parameter identifiers bound between the pipes.
    pub params: Vec<String>,
}

/// One `use` declaration, flattened: all identifier segments in source
/// order (group braces and `as` aliases contribute their identifiers).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Identifier segments of the declaration.
    pub segments: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// A fully tokenized and item-parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace member name (`core`, `dist`, ..., `peercache`).
    pub crate_name: String,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The significant tokens of the file.
    pub toks: Vec<Tok>,
    /// Per-token test-region flags (parallel to `toks`).
    pub in_test: Vec<bool>,
    /// Every function item found, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` declaration.
    pub uses: Vec<UseDecl>,
    /// Raw source lines, for snippets in reports.
    pub lines: Vec<String>,
    /// Structural confusion encountered while parsing (empty on the
    /// whole workspace — asserted by the parse-coverage self-test).
    pub errors: Vec<String>,
}

impl ParsedFile {
    /// The trimmed source line at 1-based `line`, for reports.
    #[must_use]
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

fn is_ident(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(i) if i == s)
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn ident_of(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(i) => Some(i.as_str()),
        _ => None,
    }
}

/// Find the index of the matching close delimiter for the open
/// delimiter at `open` (which must hold `open_c`). Returns `None` when
/// the stream ends first.
fn match_delim(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(&toks[i], open_c) {
            depth += 1;
        } else if is_punct(&toks[i], close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Skip a balanced `<...>` generic-argument list starting at `i`
/// (which must hold `<`). `->` arrows inside (closure/function bounds)
/// do not close the list. Returns the index just past the closing `>`.
fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        if is_punct(&toks[i], '<') {
            depth += 1;
        } else if is_punct(&toks[i], '>') {
            // `->` return arrows inside bounds: the `>` does not close.
            let arrow = i > 0 && is_punct(&toks[i - 1], '-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    i
}

/// Collect parameter identifiers from the token range strictly inside a
/// param list: identifiers immediately followed by a single `:` (not a
/// path `::`), plus bare `self`.
fn collect_params(toks: &[Tok], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if let Some(id) = ident_of(&toks[i]) {
            let typed = i + 1 < end
                && is_punct(&toks[i + 1], ':')
                && !(i + 2 < end && is_punct(&toks[i + 2], ':'))
                && id != "mut"
                && id != "dyn"
                && id != "impl";
            if id == "self" || typed {
                out.push(id.to_string());
            }
        }
        i += 1;
    }
    out.sort();
    out.dedup();
    out
}

/// Collect `let`-bound closures inside a body token range.
fn collect_closures(
    toks: &[Tok],
    start: usize,
    end: usize,
    errors: &mut Vec<String>,
) -> Vec<ClosureItem> {
    let mut out = Vec::new();
    let mut i = start;
    while i + 3 < end {
        // `let [mut] name = [move] | ... | body`
        if !is_ident(&toks[i], "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < end && is_ident(&toks[j], "mut") {
            j += 1;
        }
        let Some(name) = ident_of(&toks[j]).map(str::to_string) else {
            i += 1;
            continue;
        };
        if !(j + 1 < end && is_punct(&toks[j + 1], '=')) {
            i += 1;
            continue;
        }
        let mut k = j + 2;
        if k < end && is_ident(&toks[k], "move") {
            k += 1;
        }
        if !(k < end && is_punct(&toks[k], '|')) {
            i = j + 1;
            continue;
        }
        let line = toks[k].line;
        // Parameters: up to the closing `|` at bracket depth 0 (or the
        // immediately following `|` of an empty `||` list).
        let (params, after_pipes) = if k + 1 < end && is_punct(&toks[k + 1], '|') {
            (Vec::new(), k + 2)
        } else {
            let mut depth = 0i32;
            let mut p = k + 1;
            let mut close = None;
            while p < end {
                match &toks[p].kind {
                    TokKind::Punct('(' | '[' | '<') => depth += 1,
                    TokKind::Punct(')' | ']' | '>') => depth -= 1,
                    TokKind::Punct('|') if depth == 0 => {
                        close = Some(p);
                        break;
                    }
                    _ => {}
                }
                p += 1;
            }
            match close {
                Some(c) => (collect_params(toks, k + 1, c), c + 1),
                None => {
                    errors.push(format!("line {line}: unterminated closure parameter list"));
                    i = k + 1;
                    continue;
                }
            }
        };
        // Body: a brace block, or an expression up to the binding's `;`
        // (or an unbracketed `,`/`)` — conservative for nested forms).
        let body = if after_pipes < end && is_punct(&toks[after_pipes], '{') {
            match match_delim(toks, after_pipes, '{', '}') {
                Some(close) if close <= end => Some((after_pipes + 1, close)),
                _ => {
                    errors.push(format!("line {line}: unterminated closure body"));
                    None
                }
            }
        } else {
            let mut depth = 0i32;
            let mut p = after_pipes;
            let mut stop = end;
            while p < end {
                match &toks[p].kind {
                    TokKind::Punct('(' | '[' | '{') => depth += 1,
                    TokKind::Punct(')' | ']' | '}') => {
                        if depth == 0 {
                            stop = p;
                            break;
                        }
                        depth -= 1;
                    }
                    TokKind::Punct(';' | ',') if depth == 0 => {
                        stop = p;
                        break;
                    }
                    _ => {}
                }
                p += 1;
            }
            Some((after_pipes, stop))
        };
        if let Some(body) = body {
            out.push(ClosureItem {
                name,
                line,
                body,
                params,
            });
            i = body.1;
        } else {
            i = after_pipes;
        }
    }
    out
}

/// Parse one source file into items. Never fails; confusion is recorded
/// in [`ParsedFile::errors`].
#[must_use]
pub fn parse_file(crate_name: &str, rel_path: &str, source: &str) -> ParsedFile {
    let toks = tokenize(source);
    let in_test = mark_test_regions(&toks);
    let lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut errors = Vec::new();
    let mut fns = Vec::new();
    let mut uses = Vec::new();

    // Stack of `(self_type, close_token_index)` for impl/trait blocks.
    let mut type_frames: Vec<(String, usize)> = Vec::new();

    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        // Pop expired impl/trait frames.
        while type_frames.last().is_some_and(|&(_, close)| i > close) {
            type_frames.pop();
        }
        let tok = &toks[i];
        match ident_of(tok) {
            Some("macro_rules") => {
                // `macro_rules! name { ... }` — skip the whole body; its
                // contents are a token grammar, not item code.
                let mut j = i + 1;
                while j < n && !is_punct(&toks[j], '{') {
                    j += 1;
                }
                match match_delim(&toks, j, '{', '}') {
                    Some(close) => i = close + 1,
                    None => {
                        errors.push(format!("line {}: unterminated macro_rules body", tok.line));
                        i = n;
                    }
                }
                continue;
            }
            Some("use") => {
                let mut segments = Vec::new();
                let mut j = i + 1;
                while j < n && !is_punct(&toks[j], ';') {
                    if let Some(id) = ident_of(&toks[j]) {
                        segments.push(id.to_string());
                    }
                    j += 1;
                }
                uses.push(UseDecl {
                    segments,
                    line: tok.line,
                });
                i = j + 1;
                continue;
            }
            Some(kw @ ("impl" | "trait")) => {
                // Header: optional generics, then a path; `impl Trait for
                // Type` names the type after `for`. Stops at `{` / `;`
                // (a `;` covers `impl Trait for Type;`-style macros —
                // none in tree, but stay total).
                let mut j = i + 1;
                if kw == "trait" {
                    // `trait Name<...>: Bound {`
                    // the self type is the trait name itself
                }
                if j < n && is_punct(&toks[j], '<') {
                    j = skip_generics(&toks, j);
                }
                let mut last_ident: Option<String> = None;
                let mut after_for: Option<String> = None;
                let mut saw_for = false;
                while j < n && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
                    if is_punct(&toks[j], '<') {
                        j = skip_generics(&toks, j);
                        continue;
                    }
                    match ident_of(&toks[j]) {
                        Some("for") => saw_for = true,
                        Some("where") => break,
                        Some(id) => {
                            if saw_for {
                                if after_for.is_none() || after_for.is_some() {
                                    after_for = Some(id.to_string());
                                }
                            } else {
                                last_ident = Some(id.to_string());
                            }
                        }
                        None => {}
                    }
                    j += 1;
                }
                // Skip a `where` clause up to the opening brace.
                while j < n && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
                    if is_punct(&toks[j], '<') {
                        j = skip_generics(&toks, j);
                        continue;
                    }
                    j += 1;
                }
                let self_type = after_for.or(last_ident);
                if j < n && is_punct(&toks[j], '{') {
                    match match_delim(&toks, j, '{', '}') {
                        Some(close) => {
                            if let Some(t) = self_type {
                                type_frames.push((t, close));
                            }
                            i = j + 1;
                        }
                        None => {
                            errors.push(format!("line {}: unterminated {kw} block", tok.line));
                            i = n;
                        }
                    }
                } else {
                    i = j + 1;
                }
                continue;
            }
            Some("fn") => {
                let line = tok.line;
                let sig_start = i;
                // `fn(` / `fn (` with no name is a function-pointer
                // *type* (e.g. `pub fresh: fn() -> String`), not an
                // item — skip the keyword and keep scanning.
                if toks.get(i + 1).is_some_and(|t| is_punct(t, '(')) {
                    i += 1;
                    continue;
                }
                let Some(name) = toks.get(i + 1).and_then(ident_of).map(str::to_string) else {
                    errors.push(format!("line {line}: `fn` without a name"));
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                if j < n && is_punct(&toks[j], '<') {
                    j = skip_generics(&toks, j);
                }
                if !(j < n && is_punct(&toks[j], '(')) {
                    errors.push(format!("line {line}: fn `{name}` without a parameter list"));
                    i += 1;
                    continue;
                }
                let Some(params_close) = match_delim(&toks, j, '(', ')') else {
                    errors.push(format!("line {line}: unterminated parameters of `{name}`"));
                    i = n;
                    continue;
                };
                let params = collect_params(&toks, j + 1, params_close);
                // Scan the return type / where clause to the body brace
                // or a trait-signature `;`.
                let mut k = params_close + 1;
                while k < n && !is_punct(&toks[k], '{') && !is_punct(&toks[k], ';') {
                    if is_punct(&toks[k], '<') {
                        k = skip_generics(&toks, k);
                        continue;
                    }
                    if is_punct(&toks[k], '(') {
                        match match_delim(&toks, k, '(', ')') {
                            Some(close) => {
                                k = close + 1;
                                continue;
                            }
                            None => break,
                        }
                    }
                    k += 1;
                }
                let self_type = type_frames.last().map(|(t, _)| t.clone());
                if k < n && is_punct(&toks[k], '{') {
                    match match_delim(&toks, k, '{', '}') {
                        Some(close) => {
                            let body = (k + 1, close);
                            let closures = collect_closures(&toks, body.0, body.1, &mut errors);
                            fns.push(FnItem {
                                name,
                                self_type,
                                line,
                                sig: (sig_start, k),
                                body: Some(body),
                                params,
                                is_test: in_test[i],
                                closures,
                            });
                            // Continue INSIDE the body so nested fns and
                            // items are found too.
                            i = k + 1;
                        }
                        None => {
                            errors.push(format!("line {line}: unterminated body of `{name}`"));
                            i = n;
                        }
                    }
                } else if k < n {
                    // Trait signature without a body.
                    fns.push(FnItem {
                        name,
                        self_type,
                        line,
                        sig: (sig_start, k),
                        body: None,
                        params,
                        is_test: in_test[i],
                        closures: Vec::new(),
                    });
                    i = k + 1;
                } else {
                    errors.push(format!("line {line}: fn `{name}` runs off the file"));
                    i = n;
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }

    ParsedFile {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        toks,
        in_test,
        fns,
        uses,
        lines,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_free_functions_and_methods() {
        let f = parse_file(
            "core",
            "crates/core/src/x.rs",
            r#"
            pub fn alpha(x: u32, y: &str) -> u32 { x }
            impl Widget {
                fn beta(&self, cost: f64) -> f64 { cost }
            }
            impl Display for Gadget {
                fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            trait Oracle {
                fn guess(&self) -> u64;
                fn default_guess(&self) -> u64 { 7 }
            }
            "#,
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let names: Vec<String> = f.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(
            names,
            [
                "alpha",
                "Widget::beta",
                "Gadget::fmt",
                "Oracle::guess",
                "Oracle::default_guess"
            ]
        );
        assert_eq!(f.fns[0].params, ["x", "y"]);
        assert!(f.fns[3].body.is_none(), "trait sig has no body");
    }

    #[test]
    fn generic_signatures_parse() {
        let f = parse_file(
            "core",
            "crates/core/src/x.rs",
            "fn fan_out<T: Sync, R: Send>(items: &[T], task: impl Fn(&T) -> R + Sync) -> Vec<R> { Vec::new() }",
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].params, ["items", "task"]);
    }

    #[test]
    fn nested_fns_and_closures_are_found() {
        let f = parse_file(
            "core",
            "crates/core/src/x.rs",
            r#"
            fn outer() -> u64 {
                fn inner(q: u64) -> u64 { q }
                let run = |r: usize| -> u64 { inner(r as u64) };
                let short = |x: u64| x + 1;
                run(3) + short(4)
            }
            "#,
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let closures: Vec<&str> = f.fns[0].closures.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(closures, ["run", "short"]);
        assert_eq!(f.fns[0].closures[0].params, ["r"]);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let f = parse_file(
            "obs",
            "crates/obs/src/x.rs",
            r#"
            macro_rules! span {
                ($name:expr) => { $crate::span::span($name) };
            }
            pub fn after() {}
            "#,
        );
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["after"]);
    }

    #[test]
    fn test_region_items_are_marked() {
        let f = parse_file(
            "core",
            "crates/core/src/x.rs",
            r#"
            pub fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {}
            }
            "#,
        );
        assert!(f.errors.is_empty());
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
    }

    #[test]
    fn use_declarations_are_flattened() {
        let f = parse_file(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::{BTreeMap, BTreeSet};\nuse peercache_obs as obs;\n",
        );
        assert_eq!(f.uses.len(), 2);
        assert!(f.uses[0].segments.contains(&"BTreeMap".to_string()));
        assert!(f.uses[1].segments.contains(&"obs".to_string()));
    }
}
