//! Parser and matcher for `lint-waivers.toml`.
//!
//! The waiver file is a hand-rolled subset of TOML: `[[waiver]]` array
//! entries with exactly the string keys `rule`, `file`, `contains`,
//! `justification`, `added_in`, and `re_audit_after`. `contains` is
//! matched against the trimmed source line of the violation, keyed by
//! snippet rather than line number so waivers stay valid across
//! unrelated edits.
//!
//! Hygiene is enforced here, not in the driver: a hard total budget
//! ([`MAX_WAIVERS`]), a per-rule budget ([`MAX_WAIVERS_PER_RULE`]), and
//! staleness — `added_in` / `re_audit_after` carry `"PR <n>"` stamps,
//! and once the workspace moves past a waiver's `re_audit_after` PR the
//! run fails until the site is either fixed or consciously re-waived
//! with a pushed-out stamp.

use std::collections::BTreeMap;

use crate::rules::Violation;

/// Hard budget: the waiver file may never grow beyond this many entries.
pub const MAX_WAIVERS: usize = 10;

/// Per-rule budget: no single rule may accumulate more than this many
/// waivers — past that, the rule is either wrong or being dodged.
pub const MAX_WAIVERS_PER_RULE: usize = 4;

/// One waived violation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier the waiver applies to.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Substring that must appear on the violating source line.
    pub contains: String,
    /// Why this site is allowed to violate the rule.
    pub justification: String,
    /// PR stamp (`"PR <n>"`) when the waiver was introduced.
    pub added_in: u32,
    /// PR stamp (`"PR <n>"`) after which the waiver goes stale and the
    /// site must be re-audited.
    pub re_audit_after: u32,
}

/// Parse a `"PR <n>"` stamp.
fn parse_pr_stamp(key: &str, value: &str) -> Result<u32, String> {
    value
        .strip_prefix("PR ")
        .and_then(|n| n.trim().parse::<u32>().ok())
        .ok_or_else(|| format!("`{key}` must look like \"PR 9\", got {value:?}"))
}

/// Parse the waiver file contents. Returns an error message for any line the
/// strict subset does not accept, and enforces the total and per-rule
/// budgets.
pub fn parse_waivers(text: &str) -> Result<Vec<Waiver>, String> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut current: Option<[Option<String>; 6]> = None;

    fn finish(entry: [Option<String>; 6], idx: usize) -> Result<Waiver, String> {
        let [rule, file, contains, justification, added_in, re_audit_after] = entry;
        let missing = |k: &str| format!("waiver #{idx} is missing key `{k}`");
        let added_in = parse_pr_stamp("added_in", &added_in.ok_or_else(|| missing("added_in"))?)?;
        let re_audit_after = parse_pr_stamp(
            "re_audit_after",
            &re_audit_after.ok_or_else(|| missing("re_audit_after"))?,
        )?;
        if re_audit_after < added_in {
            return Err(format!(
                "waiver #{idx}: re_audit_after (PR {re_audit_after}) precedes added_in \
                 (PR {added_in})"
            ));
        }
        Ok(Waiver {
            rule: rule.ok_or_else(|| missing("rule"))?,
            file: file.ok_or_else(|| missing("file"))?,
            contains: contains.ok_or_else(|| missing("contains"))?,
            justification: justification.ok_or_else(|| missing("justification"))?,
            added_in,
            re_audit_after,
        })
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(entry) = current.take() {
                waivers.push(finish(entry, waivers.len() + 1)?);
            }
            current = Some([None, None, None, None, None, None]);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = \"value\"`", lineno + 1));
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!(
                "line {}: value for `{key}` must be a double-quoted string",
                lineno + 1
            ));
        };
        let value = value.replace("\\\"", "\"").replace("\\\\", "\\");
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "line {}: `{key}` appears before any [[waiver]] header",
                lineno + 1
            ));
        };
        let slot = match key {
            "rule" => 0,
            "file" => 1,
            "contains" => 2,
            "justification" => 3,
            "added_in" => 4,
            "re_audit_after" => 5,
            other => {
                return Err(format!("line {}: unknown key `{other}`", lineno + 1));
            }
        };
        if entry[slot].is_some() {
            return Err(format!("line {}: duplicate key `{key}`", lineno + 1));
        }
        if value.is_empty() {
            return Err(format!("line {}: `{key}` must not be empty", lineno + 1));
        }
        entry[slot] = Some(value);
    }
    if let Some(entry) = current.take() {
        waivers.push(finish(entry, waivers.len() + 1)?);
    }

    if waivers.len() > MAX_WAIVERS {
        return Err(format!(
            "{} entries; the budget is {MAX_WAIVERS} — fix sites instead of waiving them",
            waivers.len()
        ));
    }
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for w in &waivers {
        *per_rule.entry(w.rule.as_str()).or_default() += 1;
    }
    if let Some((rule, count)) = per_rule
        .iter()
        .find(|&(_, &count)| count > MAX_WAIVERS_PER_RULE)
    {
        return Err(format!(
            "rule {rule} has {count} waivers; the per-rule budget is \
             {MAX_WAIVERS_PER_RULE} — either the sites or the rule need fixing"
        ));
    }
    Ok(waivers)
}

/// Waivers whose `re_audit_after` stamp has passed, given the PR number
/// currently in flight. Each returned entry is `(index, message)`.
pub fn stale_waivers(waivers: &[Waiver], current_pr: u32) -> Vec<(usize, String)> {
    waivers
        .iter()
        .enumerate()
        .filter(|(_, w)| current_pr > w.re_audit_after)
        .map(|(i, w)| {
            (
                i,
                format!(
                    "waiver #{} ({} in {}, added in PR {}) was due for re-audit after \
                     PR {} and the workspace is now at PR {current_pr}; re-audit the \
                     site — fix it or push out `re_audit_after` with a fresh \
                     justification",
                    i + 1,
                    w.rule,
                    w.file,
                    w.added_in,
                    w.re_audit_after
                ),
            )
        })
        .collect()
}

/// Extract the PR number currently in flight from `CHANGES.md` contents:
/// one past the highest `- PR <n>:` entry already recorded.
pub fn current_pr_from_changes(changes: &str) -> u32 {
    changes
        .lines()
        .filter_map(|l| {
            l.trim()
                .strip_prefix("- PR ")
                .and_then(|rest| rest.split(':').next())
                .and_then(|n| n.trim().parse::<u32>().ok())
        })
        .max()
        .map_or(1, |n| n + 1)
}

/// Outcome of matching violations against waivers.
#[derive(Debug)]
pub struct WaiverReport {
    /// Violations not covered by any waiver — these fail the build.
    pub unwaived: Vec<Violation>,
    /// Violations silenced by a waiver, with the matching waiver index.
    pub waived_violations: Vec<(Violation, usize)>,
    /// Number of violations silenced by a waiver.
    pub waived: usize,
    /// Indices (into the waiver list) of waivers that matched nothing —
    /// stale entries also fail the build to keep the budget honest.
    pub unused: Vec<usize>,
}

/// Split `violations` into waived and unwaived, tracking stale waivers.
pub fn apply_waivers(violations: Vec<Violation>, waivers: &[Waiver]) -> WaiverReport {
    let mut used = vec![false; waivers.len()];
    let mut unwaived = Vec::new();
    let mut waived_violations = Vec::new();
    for v in violations {
        let hit = waivers
            .iter()
            .position(|w| w.rule == v.rule && w.file == v.file && v.snippet.contains(&w.contains));
        match hit {
            Some(idx) => {
                used[idx] = true;
                waived_violations.push((v, idx));
            }
            None => unwaived.push(v),
        }
    }
    let unused = used
        .iter()
        .enumerate()
        .filter_map(|(i, &u)| (!u).then_some(i))
        .collect();
    WaiverReport {
        unwaived,
        waived: waived_violations.len(),
        waived_violations,
        unused,
    }
}
