//! Parser and matcher for `lint-waivers.toml`.
//!
//! The waiver file is a hand-rolled subset of TOML: `[[waiver]]` array
//! entries with exactly the string keys `rule`, `file`, `contains`, and
//! `justification`. `contains` is matched against the trimmed source line of
//! the violation, keyed by snippet rather than line number so waivers stay
//! valid across unrelated edits.

use crate::rules::Violation;

/// One waived violation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier the waiver applies to.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Substring that must appear on the violating source line.
    pub contains: String,
    /// Why this site is allowed to violate the rule.
    pub justification: String,
}

/// Parse the waiver file contents. Returns an error message for any line the
/// strict subset does not accept.
pub fn parse_waivers(text: &str) -> Result<Vec<Waiver>, String> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut current: Option<[Option<String>; 4]> = None;

    fn finish(entry: [Option<String>; 4], idx: usize) -> Result<Waiver, String> {
        let [rule, file, contains, justification] = entry;
        let missing = |k: &str| format!("waiver #{idx} is missing key `{k}`");
        Ok(Waiver {
            rule: rule.ok_or_else(|| missing("rule"))?,
            file: file.ok_or_else(|| missing("file"))?,
            contains: contains.ok_or_else(|| missing("contains"))?,
            justification: justification.ok_or_else(|| missing("justification"))?,
        })
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(entry) = current.take() {
                waivers.push(finish(entry, waivers.len() + 1)?);
            }
            current = Some([None, None, None, None]);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = \"value\"`", lineno + 1));
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!(
                "line {}: value for `{key}` must be a double-quoted string",
                lineno + 1
            ));
        };
        let value = value.replace("\\\"", "\"").replace("\\\\", "\\");
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "line {}: `{key}` appears before any [[waiver]] header",
                lineno + 1
            ));
        };
        let slot = match key {
            "rule" => 0,
            "file" => 1,
            "contains" => 2,
            "justification" => 3,
            other => {
                return Err(format!("line {}: unknown key `{other}`", lineno + 1));
            }
        };
        if entry[slot].is_some() {
            return Err(format!("line {}: duplicate key `{key}`", lineno + 1));
        }
        if value.is_empty() {
            return Err(format!("line {}: `{key}` must not be empty", lineno + 1));
        }
        entry[slot] = Some(value);
    }
    if let Some(entry) = current.take() {
        waivers.push(finish(entry, waivers.len() + 1)?);
    }
    Ok(waivers)
}

/// Outcome of matching violations against waivers.
#[derive(Debug)]
pub struct WaiverReport {
    /// Violations not covered by any waiver — these fail the build.
    pub unwaived: Vec<Violation>,
    /// Number of violations silenced by a waiver.
    pub waived: usize,
    /// Indices (into the waiver list) of waivers that matched nothing —
    /// stale entries also fail the build to keep the budget honest.
    pub unused: Vec<usize>,
}

/// Split `violations` into waived and unwaived, tracking stale waivers.
pub fn apply_waivers(violations: Vec<Violation>, waivers: &[Waiver]) -> WaiverReport {
    let mut used = vec![false; waivers.len()];
    let mut unwaived = Vec::new();
    let mut waived = 0usize;
    for v in violations {
        let hit = waivers
            .iter()
            .position(|w| w.rule == v.rule && w.file == v.file && v.snippet.contains(&w.contains));
        match hit {
            Some(idx) => {
                used[idx] = true;
                waived += 1;
            }
            None => unwaived.push(v),
        }
    }
    let unused = used
        .iter()
        .enumerate()
        .filter_map(|(i, &u)| (!u).then_some(i))
        .collect();
    WaiverReport {
        unwaived,
        waived,
        unused,
    }
}
