//! A minimal Rust token scanner.
//!
//! This is not a full lexer: it produces just enough token structure for the
//! domain rules in [`crate::rules`] — identifiers, numeric literals (with a
//! float/integer distinction), plain string literals (kept, with their
//! content, for the observability-name rule O1), the `==`/`!=` operators,
//! and single-character punctuation. Comments (line, block, doc), byte and
//! raw string literals, character literals, and lifetimes are consumed and
//! discarded so that rule keywords appearing in prose never fire.

/// The classified content of one significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unwrap`, `fn`, ...).
    Ident(String),
    /// A numeric literal containing a decimal point or exponent (`0.0`, `1e-9`).
    Float(String),
    /// An integer literal (`42`, `0xff`, `7usize`).
    Int,
    /// A plain double-quoted string literal, with its raw body (escape
    /// sequences left as written). Byte and raw strings are discarded.
    Str(String),
    /// A two-character comparison operator: only `==` and `!=` are merged.
    Op([char; 2]),
    /// Any other single punctuation character.
    Punct(char),
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line number the token starts on.
    pub line: u32,
    /// Classified token content.
    pub kind: TokKind,
}

/// Scan `src` into significant tokens, discarding comments, strings,
/// character literals, and lifetimes.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Advance past a quoted body, honouring backslash escapes. Returns the
    // index just past the closing quote (or `n` if unterminated).
    fn skip_quoted(b: &[char], mut i: usize, quote: char, line: &mut u32) -> usize {
        while i < b.len() {
            match b[i] {
                '\\' => i += 2,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                c if c == quote => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    // Advance past a raw string body `r##"..."##` starting at the first `#`
    // or `"`. Returns the index just past the closing delimiter.
    fn skip_raw(b: &[char], mut i: usize, line: &mut u32) -> usize {
        let mut hashes = 0usize;
        while i < b.len() && b[i] == '#' {
            hashes += 1;
            i += 1;
        }
        if i >= b.len() || b[i] != '"' {
            return i; // not actually a raw string; give up gracefully
        }
        i += 1;
        while i < b.len() {
            if b[i] == '\n' {
                *line += 1;
                i += 1;
            } else if b[i] == '"' {
                let mut j = i + 1;
                let mut seen = 0usize;
                while j < b.len() && b[j] == '#' && seen < hashes {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        i
    }

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let body_start = i + 1;
                i = skip_quoted(&b, i + 1, '"', &mut line);
                let mut end = i.min(n);
                // skip_quoted stops just past the closing quote; drop it
                // (an unterminated string keeps everything).
                if end > body_start && b[end - 1] == '"' {
                    end -= 1;
                }
                toks.push(Tok {
                    line: start_line,
                    kind: TokKind::Str(b[body_start..end].iter().collect()),
                });
            }
            '\'' => {
                // Distinguish a lifetime (`'a`) from a char literal (`'a'`).
                if i + 1 < n && b[i + 1] == '\\' {
                    i = skip_quoted(&b, i + 1, '\'', &mut line);
                } else if i + 2 < n
                    && (b[i + 1].is_alphanumeric() || b[i + 1] == '_')
                    && b[i + 2] != '\''
                {
                    // Lifetime: consume the identifier, no closing quote.
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                } else {
                    i = skip_quoted(&b, i + 1, '\'', &mut line);
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                    i += 2;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                } else {
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                    if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                        is_float = true;
                        i += 1;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                    if i < n && matches!(b[i], 'e' | 'E') {
                        let mut j = i + 1;
                        if j < n && matches!(b[j], '+' | '-') {
                            j += 1;
                        }
                        if j < n && b[j].is_ascii_digit() {
                            is_float = true;
                            i = j;
                            while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                                i += 1;
                            }
                        }
                    }
                    // Type suffix (`f64`, `usize`): a suffix containing `f`
                    // marks a float literal like `1f64`.
                    let suffix_start = i;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    if b[suffix_start..i].contains(&'f') {
                        is_float = true;
                    }
                }
                let text: String = b[start..i].iter().collect();
                toks.push(Tok {
                    line,
                    kind: if is_float {
                        TokKind::Float(text)
                    } else {
                        TokKind::Int
                    },
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: `r"..."`, `r#"..."#`, `b"..."`,
                // `br#"..."#`.
                let next = b.get(i).copied();
                match (ident.as_str(), next) {
                    ("r" | "br", Some('"' | '#')) => {
                        i = skip_raw(&b, i, &mut line);
                    }
                    ("b", Some('"')) => {
                        i = skip_quoted(&b, i + 1, '"', &mut line);
                    }
                    _ => toks.push(Tok {
                        line,
                        kind: TokKind::Ident(ident),
                    }),
                }
            }
            '=' if i + 1 < n && b[i + 1] == '=' => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Op(['=', '=']),
                });
                i += 2;
            }
            '!' if i + 1 < n && b[i + 1] == '=' => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Op(['!', '=']),
                });
                i += 2;
            }
            _ => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    toks
}

/// Mark tokens belonging to test-only code: bodies of items annotated
/// `#[cfg(test)]` or `#[test]`. Returns one flag per token.
///
/// The scan is purely structural: after a test attribute, every subsequent
/// attribute is skipped, then the next item's body (`{ ... }`, by brace
/// matching) or terminating `;` is marked.
pub fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let is_punct = |t: &Tok, c: char| t.kind == TokKind::Punct(c);
    let is_ident = |t: &Tok, s: &str| matches!(&t.kind, TokKind::Ident(i) if i == s);

    let mut i = 0usize;
    while i < toks.len() {
        // Match `#[cfg(test)]` or `#[test]` starting at i.
        let cfg_test = i + 6 < toks.len()
            && is_punct(&toks[i], '#')
            && is_punct(&toks[i + 1], '[')
            && is_ident(&toks[i + 2], "cfg")
            && is_punct(&toks[i + 3], '(')
            && is_ident(&toks[i + 4], "test")
            && is_punct(&toks[i + 5], ')')
            && is_punct(&toks[i + 6], ']');
        let plain_test = i + 3 < toks.len()
            && is_punct(&toks[i], '#')
            && is_punct(&toks[i + 1], '[')
            && is_ident(&toks[i + 2], "test")
            && is_punct(&toks[i + 3], ']');
        if !(cfg_test || plain_test) {
            i += 1;
            continue;
        }
        let attr_len = if cfg_test { 7 } else { 4 };
        for f in flags.iter_mut().skip(i).take(attr_len) {
            *f = true;
        }
        let mut j = i + attr_len;
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && is_punct(&toks[j], '#') && is_punct(&toks[j + 1], '[') {
            let mut depth = 0usize;
            while j < toks.len() {
                if is_punct(&toks[j], '[') {
                    depth += 1;
                } else if is_punct(&toks[j], ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                flags[j] = true;
                j += 1;
            }
        }
        // Mark up to the item body and through its matching close brace, or
        // to a terminating `;` for body-less items (`#[cfg(test)] use ...`).
        while j < toks.len() && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
            flags[j] = true;
            j += 1;
        }
        if j < toks.len() && is_punct(&toks[j], '{') {
            let mut depth = 0usize;
            while j < toks.len() {
                if is_punct(&toks[j], '{') {
                    depth += 1;
                } else if is_punct(&toks[j], '}') {
                    depth -= 1;
                    flags[j] = true;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                flags[j] = true;
                j += 1;
            }
        } else if j < toks.len() {
            flags[j] = true; // the `;`
            j += 1;
        }
        i = j;
    }
    flags
}
