//! Domain rules D1/D2/P1/N1/O1/S1/R1 over the token stream.
//!
//! Each rule is scoped by crate name or file path; scope decisions are
//! documented on the rule itself. All rules skip test-only regions
//! (`#[cfg(test)]` / `#[test]` items) as marked by
//! [`crate::lexer::mark_test_regions`].

use crate::lexer::{Tok, TokKind};

/// A single rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier: `"D1"`, `"D2"`, `"P1"`, `"N1"`, `"O1"`, `"S1"`,
    /// `"R1"`, or one of the semantic rules `"T1"` / `"C1"` / `"A1"`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The full source line, for reporting and waiver `contains` matching.
    pub snippet: String,
    /// Human-readable explanation of the rule.
    pub message: String,
    /// Cross-function flow trace for the semantic rules (T1/C1/A1);
    /// empty for the token-level rules.
    pub trace: Vec<String>,
}

/// Identifier substrings that mark an operand as cost-valued for rule N1.
///
/// These cover the paper's cost vocabulary (access / dissemination /
/// fairness / contention costs) and the dual variables of the ConFL
/// primal-dual scheme (alpha / beta / gamma bids).
const COSTY: &[&str] = &[
    "cost",
    "fairness",
    "access",
    "dissem",
    "contention",
    "alpha",
    "beta",
    "gamma",
    "price",
];

/// Crates whose deterministic layers must not use hash-ordered collections.
const D1_CRATES: &[&str] = &["core", "dist", "graph", "lp"];
/// Crates allowed ambient time / randomness (everything else is checked).
const D2_EXEMPT_CRATES: &[&str] = &["obs", "bench", "lint"];
/// Crates whose cost comparisons must go through `core::costs` helpers.
const N1_CRATES: &[&str] = &["core", "dist", "graph"];
/// The sanctioned definition site for the epsilon / exact-tie helpers:
/// exempt from N1 so the helpers themselves can compare floats directly.
const N1_EXEMPT_FILE: &str = "crates/core/src/costs.rs";
/// Crates exempt from rule O1: `obs` hosts the registry and the
/// primitives themselves (its docs and demos use scratch names), and
/// `lint` quotes observability names in its own fixtures.
const O1_EXEMPT_CRATES: &[&str] = &["obs", "lint"];
/// The sanctioned `AllPairsPaths::compute` call sites for rule S1: the
/// definition and its incremental-update internals, the landmark
/// oracle's exact-in-ball fallback, the dense reference matrix, and the
/// scoped store's bounded per-block computes. Anywhere else, a dense
/// all-pairs compute is the `O(N²)` wall creeping back in.
const S1_ALLOWED_FILES: &[&str] = &[
    "crates/graph/src/paths.rs",
    "crates/graph/src/oracle.rs",
    "crates/core/src/costs.rs",
    "crates/core/src/scoped.rs",
];
/// The only files allowed to mutate shard-local state directly (rule
/// R1): the shard data structures themselves and the sharded world's
/// deterministic merge phases. Anywhere else, `arena_mut(...)` /
/// `apply_cross(...)` call sites are a shard-isolation breach — state
/// that should have traveled through the `ShardRouter` being written
/// from outside the owning shard's serial merge, which is exactly the
/// nondeterminism the sharded pipeline's replay guarantee forbids.
const R1_ALLOWED_FILES: &[&str] = &["crates/core/src/shard.rs", "crates/core/src/sharded.rs"];

/// The closed vocabulary of observability names for rule O1, built from
/// the string literals in `crates/obs/src/names.rs`.
#[derive(Debug, Default, Clone)]
pub struct NameRegistry {
    names: Vec<String>,
}

impl NameRegistry {
    /// Build a registry from an iterator of names (sorted and deduped).
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> Self {
        let mut names: Vec<String> = names.into_iter().collect();
        names.sort();
        names.dedup();
        Self { names }
    }

    /// Number of distinct registered names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, name: &str) -> bool {
        self.names
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }
}

fn is_p1_scope(rel_path: &str) -> bool {
    // Protocol and event paths that must be panic-free: the whole dist
    // crate's sources (the retry/timeout/chaos paths plus the SWIM
    // membership detector and the versioned-replica exchange) and, in
    // core, the world event layer, the partition-tracking network
    // model, and the replication top-up that repair invokes mid-event.
    (rel_path.starts_with("crates/dist/src/") && rel_path.ends_with(".rs"))
        || rel_path == "crates/core/src/world.rs"
        || rel_path == "crates/core/src/model.rs"
        || rel_path == "crates/core/src/replication.rs"
}

/// Run all rules over one file's token stream.
///
/// `crate_name` is the workspace member name (`core`, `dist`, ... or
/// `peercache` for the root package); `rel_path` is workspace-relative with
/// `/` separators; `lines` holds the raw source lines for snippets.
pub fn check_tokens(
    crate_name: &str,
    rel_path: &str,
    toks: &[Tok],
    in_test: &[bool],
    lines: &[&str],
    registry: Option<&NameRegistry>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut push = |rule: &'static str, line: u32, message: String| {
        out.push(Violation {
            rule,
            file: rel_path.to_string(),
            line,
            snippet: snippet(line),
            message,
            trace: Vec::new(),
        });
    };

    let d1 = D1_CRATES.contains(&crate_name);
    let d2 = !D2_EXEMPT_CRATES.contains(&crate_name);
    let p1 = is_p1_scope(rel_path);
    let n1 = N1_CRATES.contains(&crate_name) && rel_path != N1_EXEMPT_FILE;
    let o1 = registry.filter(|_| !O1_EXEMPT_CRATES.contains(&crate_name));
    let s1 = crate_name != "lint" && !S1_ALLOWED_FILES.contains(&rel_path);
    let r1 = crate_name != "lint" && !R1_ALLOWED_FILES.contains(&rel_path);

    for (i, tok) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        match &tok.kind {
            TokKind::Ident(id) => {
                if d1 && (id == "HashMap" || id == "HashSet") {
                    push(
                        "D1",
                        tok.line,
                        format!(
                            "`{id}` has nondeterministic iteration order; use BTreeMap/BTreeSet \
                             or an indexed Vec in deterministic crates"
                        ),
                    );
                }
                if d2 && (id == "Instant" || id == "SystemTime" || id == "thread_rng") {
                    push(
                        "D2",
                        tok.line,
                        format!(
                            "`{id}` is an ambient time/randomness source; inject a clock from \
                             `obs` or a seeded rng instead"
                        ),
                    );
                }
                if p1 {
                    let next_is =
                        |c: char| matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct(c));
                    let prev_is_dot = i > 0 && toks[i - 1].kind == TokKind::Punct('.');
                    if prev_is_dot && (id == "unwrap" || id == "expect") && next_is('(') {
                        push(
                            "P1",
                            tok.line,
                            format!(
                                "`.{id}()` in a protocol/event path; return a typed \
                                 `ProtocolError` / `CoreError` instead"
                            ),
                        );
                    }
                    if !prev_is_dot
                        && matches!(
                            id.as_str(),
                            "panic" | "todo" | "unimplemented" | "unreachable"
                        )
                        && next_is('!')
                    {
                        push(
                            "P1",
                            tok.line,
                            format!(
                                "`{id}!` in a protocol/event path; these paths must be \
                                 panic-free under adversarial schedules"
                            ),
                        );
                    }
                }
                if r1
                    && (id == "arena_mut" || id == "apply_cross")
                    && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('))
                {
                    push(
                        "R1",
                        tok.line,
                        format!(
                            "`{id}(...)` outside the shard modules; cross-shard state must \
                             travel as typed `CrossShardEvent`s through the `ShardRouter` \
                             and be applied in the owning shard's deterministic merge"
                        ),
                    );
                }
                if s1 && id == "AllPairsPaths" && s1_is_compute_call(toks, i) {
                    push(
                        "S1",
                        tok.line,
                        "dense `AllPairsPaths::compute` outside the sanctioned files; \
                         it is `O(N²)` in the ambient graph — use the scoped contention \
                         store / landmark oracle, or compute on a bounded induced \
                         subgraph inside an allowed module"
                            .to_string(),
                    );
                }
                if let Some(reg) = o1 {
                    if let Some(slot) = o1_name_slot(toks, i) {
                        match toks.get(slot).map(|t| &t.kind) {
                            Some(TokKind::Str(name)) => {
                                if !reg.contains(name) {
                                    push(
                                        "O1",
                                        tok.line,
                                        format!(
                                            "observability name \"{name}\" is not registered; \
                                             add it to `REGISTERED_NAMES` in \
                                             crates/obs/src/names.rs"
                                        ),
                                    );
                                }
                            }
                            _ => push(
                                "O1",
                                tok.line,
                                "observability names must be 'static string literals from \
                                 `obs::names::REGISTERED_NAMES` so traces and metrics keep \
                                 a closed, greppable vocabulary"
                                    .to_string(),
                            ),
                        }
                    }
                }
            }
            TokKind::Op(_) if n1 && comparison_is_floaty(toks, i) => {
                push(
                    "N1",
                    tok.line,
                    "direct `==`/`!=` on a cost-valued f64; use the epsilon helpers \
                     (`approx_eq`/`approx_zero`) or the documented exact-tie helper \
                     (`cost_tie_eq`) in `core::costs`"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    out
}

/// For O1: if the identifier at `i` opens an observability call whose
/// first argument is a metric/span/series name, return the token index
/// where that name must appear.
///
/// Covered shapes: `obs::counter(` / `obs::gauge(` / `obs::histogram(`,
/// `obs::span!(` / `obs::event!(`, and `TimeSeries::new(` /
/// `TimeSeries::with_capacity(` (qualified `obs::TimeSeries::...` is
/// caught at its `TimeSeries` token). `emit_span` is deliberately not
/// covered: it is the plumbing layer that receives names computed by
/// registered-name helpers such as `message_span_name`.
fn o1_name_slot(toks: &[Tok], i: usize) -> Option<usize> {
    let ident = |j: usize| match toks.get(j).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |j: usize, c: char| matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct(c));
    match ident(i)? {
        "obs" if punct(i + 1, ':') && punct(i + 2, ':') => match ident(i + 3)? {
            "counter" | "gauge" | "histogram" if punct(i + 4, '(') => Some(i + 5),
            "span" | "event" if punct(i + 4, '!') && punct(i + 5, '(') => Some(i + 6),
            _ => None,
        },
        "TimeSeries" if punct(i + 1, ':') && punct(i + 2, ':') => match ident(i + 3)? {
            "new" | "with_capacity" if punct(i + 4, '(') => Some(i + 5),
            _ => None,
        },
        _ => None,
    }
}

/// For S1: does the `AllPairsPaths` identifier at `i` open a
/// `AllPairsPaths::compute(` or `AllPairsPaths::compute_with(` call?
/// Doc references and type positions (`-> AllPairsPaths`) never match.
fn s1_is_compute_call(toks: &[Tok], i: usize) -> bool {
    let punct = |j: usize, c: char| matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct(c));
    let method = match toks.get(i + 3).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => s.as_str(),
        _ => return false,
    };
    punct(i + 1, ':')
        && punct(i + 2, ':')
        && matches!(method, "compute" | "compute_with")
        && punct(i + 4, '(')
}

/// Heuristic for N1: does the `==`/`!=` at token index `op` compare
/// cost-valued floats?
///
/// Token-level analysis has no types, so this flags a comparison when either
/// operand is a float literal, or when an identifier inside the operand
/// expression (a short window bounded by expression punctuation) matches the
/// cost vocabulary in [`COSTY`]. Integer-only comparisons such as
/// `i == j` on node ids never match.
fn comparison_is_floaty(toks: &[Tok], op: usize) -> bool {
    const WINDOW: usize = 6;
    let operand_tok = |t: &Tok| -> bool {
        matches!(
            t.kind,
            TokKind::Ident(_)
                | TokKind::Int
                | TokKind::Float(_)
                | TokKind::Punct('.')
                | TokKind::Punct('[')
                | TokKind::Punct(']')
                | TokKind::Punct('(')
                | TokKind::Punct(')')
                | TokKind::Punct(':')
        )
    };
    let floaty = |t: &Tok| -> bool {
        match &t.kind {
            TokKind::Float(_) => true,
            // Only snake_case identifiers count: cost *values* are locals and
            // fields, while CamelCase names are types/variants (e.g. the
            // `PathSelection::MinCost` enum), which are never f64s.
            TokKind::Ident(id) if !id.starts_with(char::is_uppercase) => {
                let lower = id.to_ascii_lowercase();
                COSTY.iter().any(|k| lower.contains(k))
            }
            _ => false,
        }
    };
    // Backward over the left operand.
    let mut steps = 0usize;
    let mut i = op;
    while i > 0 && steps < WINDOW {
        i -= 1;
        if !operand_tok(&toks[i]) {
            break;
        }
        if floaty(&toks[i]) {
            return true;
        }
        steps += 1;
    }
    // Forward over the right operand.
    steps = 0;
    i = op;
    while i + 1 < toks.len() && steps < WINDOW {
        i += 1;
        if !operand_tok(&toks[i]) {
            break;
        }
        if floaty(&toks[i]) {
            return true;
        }
        steps += 1;
    }
    false
}
