//! Approximate call graph and dataflow fixpoints over parsed files.
//!
//! The graph is deliberately conservative about *resolution* rather
//! than *coverage*: a call edge is only added when the callee can be
//! pinned down — qualified `Type::method` paths through an impl index,
//! locally `let`-bound closures, same-file bare names, or names defined
//! exactly once in the whole workspace. Ambiguous by-name calls are
//! dropped instead of unioned, so one popular method name cannot smear
//! taint across unrelated crates. The semantic rules built on top
//! ([`crate::semantic`]) are tuned for this: they report at *local*
//! evidence (a source used here, an emission reached through resolved
//! edges) and accept that an unresolvable call is a silent edge.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::parser::ParsedFile;

/// Taint class: hash-ordered iteration reached this function's data.
pub const TAINT_HASH: u8 = 1;
/// Taint class: ambient wall-clock time or ambient randomness.
pub const TAINT_TIME: u8 = 2;
/// Taint class: thread identity or host thread-count.
pub const TAINT_THREAD: u8 = 4;

/// Human names for the taint classes, for messages and traces.
#[must_use]
pub fn taint_names(mask: u8) -> String {
    let mut parts = Vec::new();
    if mask & TAINT_HASH != 0 {
        parts.push("hash-iteration-order");
    }
    if mask & TAINT_TIME != 0 {
        parts.push("ambient-time/randomness");
    }
    if mask & TAINT_THREAD != 0 {
        parts.push("thread-identity");
    }
    parts.join(" + ")
}

/// One analyzable unit: a function item or a `let`-bound closure.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare name (closure nodes use their binding name).
    pub name: String,
    /// `impl`/`trait` self type, when the node is a method.
    pub self_type: Option<String>,
    /// 1-based definition line.
    pub line: u32,
    /// Token range `[start, end)` of the signature; `None` for closure
    /// nodes. Taint seeding scans it: a function whose signature
    /// mentions `HashMap` handles hash-ordered data.
    pub sig: Option<(usize, usize)>,
    /// Token range `[start, end)` of the body, when present.
    pub body: Option<(usize, usize)>,
    /// Parameter identifiers.
    pub params: Vec<String>,
    /// In a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// True for `let`-bound closure pseudo-functions.
    pub is_closure: bool,
    /// Enclosing function node, for closures.
    pub parent: Option<usize>,
}

impl FnNode {
    /// `Type::name` or the bare name, for traces.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A resolved call edge out of a node.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// Token index of the call site (callee-name token).
    pub tok: usize,
}

/// A call to a caller-supplied `Fn`-typed parameter — unresolvable,
/// surfaced to rule C1 as a proof obligation.
#[derive(Debug, Clone)]
pub struct ParamCall {
    /// The parameter's name.
    pub param: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Token index of the call.
    pub tok: usize,
}

/// A direct observability-emission site inside a node's own tokens:
/// `obs::span!(` / `obs::event!(` / `obs::counter|gauge|histogram(`.
#[derive(Debug, Clone)]
pub struct EmissionSite {
    /// What the site is, for messages (`obs::span!`, ...).
    pub what: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Token index of the leading `obs` identifier.
    pub tok: usize,
}

/// Where a propagated property entered a node, for flow traces.
#[derive(Debug, Clone, Copy)]
pub enum Witness {
    /// Introduced by the node's own tokens at this line.
    Local(u32),
    /// Inherited through a call to `callee` at this line.
    Via(u32, usize),
}

/// The parsed workspace with its resolved call graph.
pub struct Workspace {
    /// All parsed files, in the order given.
    pub files: Vec<ParsedFile>,
    /// All function/closure nodes across every file.
    pub nodes: Vec<FnNode>,
    /// Resolved call edges per node.
    pub calls: Vec<Vec<Call>>,
    /// Calls to `Fn`-typed parameters per node.
    pub param_calls: Vec<Vec<ParamCall>>,
    /// Direct emission sites per node.
    pub emissions: Vec<Vec<EmissionSite>>,
    /// Token subranges of each node's *own* code: its body minus the
    /// bodies of nested items and `let`-bound closures (those are
    /// nodes of their own).
    pub segments: Vec<Vec<(usize, usize)>>,
}

const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "match",
    "while",
    "for",
    "loop",
    "return",
    "break",
    "continue",
    "fn",
    "let",
    "move",
    "mut",
    "ref",
    "in",
    "as",
    "unsafe",
    "where",
    "impl",
    "dyn",
    "pub",
    "use",
    "mod",
    "struct",
    "enum",
    "trait",
    "const",
    "static",
    "type",
    "assert",
    "debug_assert",
    "drop",
];

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

impl Workspace {
    /// Build the workspace graph from parsed files.
    #[must_use]
    pub fn build(files: Vec<ParsedFile>) -> Self {
        let mut nodes: Vec<FnNode> = Vec::new();
        // (file index, fn index in file) -> node, plus closure nodes.
        for (fi, file) in files.iter().enumerate() {
            for f in &file.fns {
                let parent_idx = nodes.len();
                nodes.push(FnNode {
                    file: fi,
                    name: f.name.clone(),
                    self_type: f.self_type.clone(),
                    line: f.line,
                    sig: Some(f.sig),
                    body: f.body,
                    params: f.params.clone(),
                    is_test: f.is_test,
                    is_closure: false,
                    parent: None,
                });
                for c in &f.closures {
                    nodes.push(FnNode {
                        file: fi,
                        name: c.name.clone(),
                        self_type: None,
                        line: c.line,
                        sig: None,
                        body: Some(c.body),
                        params: c.params.clone(),
                        is_test: f.is_test,
                        is_closure: true,
                        parent: Some(parent_idx),
                    });
                }
            }
        }

        // Indexes over non-test, non-closure nodes.
        let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_name_method: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_name_free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, n) in nodes.iter().enumerate() {
            if n.is_test || n.is_closure {
                continue;
            }
            match &n.self_type {
                Some(t) => {
                    methods
                        .entry((t.clone(), n.name.clone()))
                        .or_default()
                        .push(idx);
                    by_name_method.entry(n.name.clone()).or_default().push(idx);
                }
                None => by_name_free.entry(n.name.clone()).or_default().push(idx),
            }
        }

        // Own-code segments: body minus nested node bodies in the same file.
        let mut segments: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
        for (idx, n) in nodes.iter().enumerate() {
            let Some((start, end)) = n.body else { continue };
            // Collect holes: bodies (and signatures, for fns) of other
            // nodes strictly nested inside this one.
            let mut holes: Vec<(usize, usize)> = Vec::new();
            for (j, m) in nodes.iter().enumerate() {
                if j == idx || m.file != n.file {
                    continue;
                }
                if let Some((ms, me)) = m.body {
                    if ms > start && me <= end {
                        holes.push((ms, me));
                    }
                }
            }
            holes.sort_unstable();
            let mut segs = Vec::new();
            let mut cur = start;
            for (hs, he) in holes {
                if hs > cur {
                    segs.push((cur, hs));
                }
                cur = cur.max(he);
            }
            if cur < end {
                segs.push((cur, end));
            }
            segments[idx] = segs;
        }

        let mut calls: Vec<Vec<Call>> = vec![Vec::new(); nodes.len()];
        let mut param_calls: Vec<Vec<ParamCall>> = vec![Vec::new(); nodes.len()];
        let mut emissions: Vec<Vec<EmissionSite>> = vec![Vec::new(); nodes.len()];

        for idx in 0..nodes.len() {
            let n = &nodes[idx];
            let toks = &files[n.file].toks;
            // Sibling closures visible to this node: its own closures
            // (fn nodes), or — for a closure — the parent's closures.
            let scope_of = if n.is_closure {
                n.parent.unwrap_or(idx)
            } else {
                idx
            };
            for &(start, end) in &segments[idx] {
                let mut i = start;
                while i < end {
                    let Some(id) = ident_at(toks, i) else {
                        i += 1;
                        continue;
                    };
                    // Emission sites: obs::counter( / obs::span!( ...
                    if id == "obs" && punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') {
                        match ident_at(toks, i + 3) {
                            Some(m @ ("counter" | "gauge" | "histogram"))
                                if punct_at(toks, i + 4, '(') =>
                            {
                                let what = match m {
                                    "counter" => "obs::counter",
                                    "gauge" => "obs::gauge",
                                    _ => "obs::histogram",
                                };
                                emissions[idx].push(EmissionSite {
                                    what,
                                    line: toks[i].line,
                                    tok: i,
                                });
                                i += 5;
                                continue;
                            }
                            Some(m @ ("span" | "event"))
                                if punct_at(toks, i + 4, '!') && punct_at(toks, i + 5, '(') =>
                            {
                                let what = if m == "span" {
                                    "obs::span!"
                                } else {
                                    "obs::event!"
                                };
                                emissions[idx].push(EmissionSite {
                                    what,
                                    line: toks[i].line,
                                    tok: i,
                                });
                                i += 6;
                                continue;
                            }
                            _ => {}
                        }
                    }
                    // Qualified call: `Type::method(`.
                    if id.starts_with(char::is_uppercase)
                        && punct_at(toks, i + 1, ':')
                        && punct_at(toks, i + 2, ':')
                        && punct_at(toks, i + 4, '(')
                    {
                        if let Some(m) = ident_at(toks, i + 3) {
                            let ty = if id == "Self" {
                                n.self_type.clone().unwrap_or_else(|| id.to_string())
                            } else {
                                id.to_string()
                            };
                            if let Some(cands) = methods.get(&(ty, m.to_string())) {
                                for &c in cands.iter().take(4) {
                                    calls[idx].push(Call {
                                        callee: c,
                                        line: toks[i].line,
                                        tok: i,
                                    });
                                }
                            }
                            i += 5;
                            continue;
                        }
                    }
                    // Method call: `.method(`.
                    let prev_dot = i > 0 && punct_at(toks, i - 1, '.');
                    let prev_colon = i > 0 && punct_at(toks, i - 1, ':');
                    if prev_dot && punct_at(toks, i + 1, '(') {
                        if let Some(&c) = Self::pick_method(&by_name_method, &nodes, n, id) {
                            calls[idx].push(Call {
                                callee: c,
                                line: toks[i].line,
                                tok: i,
                            });
                        }
                        i += 2;
                        continue;
                    }
                    // Bare call: `name(` — not a path segment, not a
                    // macro, lowercase start, not a keyword.
                    if !prev_dot
                        && !prev_colon
                        && punct_at(toks, i + 1, '(')
                        && id.starts_with(|c: char| c.is_lowercase() || c == '_')
                        && !KEYWORDS.contains(&id)
                    {
                        // Innermost visible `let`-bound closure first.
                        let closure = nodes.iter().enumerate().find(|(j, m)| {
                            m.is_closure && m.parent == Some(scope_of) && m.name == id && *j != idx
                        });
                        if let Some((c, _)) = closure {
                            calls[idx].push(Call {
                                callee: c,
                                line: toks[i].line,
                                tok: i,
                            });
                        } else if n.params.iter().any(|p| p == id) {
                            param_calls[idx].push(ParamCall {
                                param: id.to_string(),
                                line: toks[i].line,
                                tok: i,
                            });
                        } else if let Some(&c) =
                            Self::pick_free(&by_name_free, &by_name_method, &nodes, n, id)
                        {
                            calls[idx].push(Call {
                                callee: c,
                                line: toks[i].line,
                                tok: i,
                            });
                        }
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
            }
        }

        Workspace {
            files,
            nodes,
            calls,
            param_calls,
            emissions,
            segments,
        }
    }

    /// Resolve a `.method(` call: prefer a unique same-file candidate
    /// (same self type first), else a workspace-unique name.
    fn pick_method<'a>(
        by_name: &'a BTreeMap<String, Vec<usize>>,
        nodes: &[FnNode],
        caller: &FnNode,
        name: &str,
    ) -> Option<&'a usize> {
        let cands = by_name.get(name)?;
        let same_type: Vec<&usize> = cands
            .iter()
            .filter(|&&c| nodes[c].file == caller.file && nodes[c].self_type == caller.self_type)
            .collect();
        if same_type.len() == 1 {
            return Some(same_type[0]);
        }
        let same_file: Vec<&usize> = cands
            .iter()
            .filter(|&&c| nodes[c].file == caller.file)
            .collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        if cands.len() == 1 {
            return Some(&cands[0]);
        }
        None
    }

    /// Resolve a bare `name(` call: same-file free fn, else a
    /// workspace-unique free fn, else a workspace-unique method.
    fn pick_free<'a>(
        free: &'a BTreeMap<String, Vec<usize>>,
        by_name_method: &'a BTreeMap<String, Vec<usize>>,
        nodes: &[FnNode],
        caller: &FnNode,
        name: &str,
    ) -> Option<&'a usize> {
        if let Some(cands) = free.get(name) {
            let same_file: Vec<&usize> = cands
                .iter()
                .filter(|&&c| nodes[c].file == caller.file)
                .collect();
            if same_file.len() == 1 {
                return Some(same_file[0]);
            }
            if cands.len() == 1 {
                return Some(&cands[0]);
            }
            return None;
        }
        let cands = by_name_method.get(name)?;
        if cands.len() == 1 {
            return Some(&cands[0]);
        }
        None
    }

    /// Crate name of the node's file.
    #[must_use]
    pub fn crate_of(&self, node: usize) -> &str {
        &self.files[self.nodes[node].file].crate_name
    }

    /// Workspace-relative path of the node's file.
    #[must_use]
    pub fn path_of(&self, node: usize) -> &str {
        &self.files[self.nodes[node].file].rel_path
    }

    /// Generic upward fixpoint: each node's mask is its `seed` plus the
    /// union of every callee's mask, except callees for which `cut`
    /// returns true (boundaries that consume rather than propagate).
    /// `allow[i]` masks which classes node `i` can hold at all — a
    /// sanitizing node (e.g. one that sorts hash-collection contents)
    /// simply disallows the hash-order class. Returns `(mask,
    /// witness-per-class)` per node; witnesses record where each class
    /// first entered the node.
    #[must_use]
    pub fn propagate(
        &self,
        seeds: &[(u8, Option<u32>)],
        allow: &[u8],
        cut: &dyn Fn(usize) -> bool,
    ) -> (Vec<u8>, Vec<[Option<Witness>; 3]>) {
        let n = self.nodes.len();
        let mut mask = vec![0u8; n];
        let mut wit: Vec<[Option<Witness>; 3]> = vec![[None; 3]; n];
        for i in 0..n {
            let (m, line) = seeds[i];
            mask[i] = m & allow[i];
            for (bit, w) in wit[i].iter_mut().enumerate() {
                if mask[i] & (1 << bit) != 0 {
                    *w = Some(Witness::Local(line.unwrap_or(self.nodes[i].line)));
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for call in &self.calls[i] {
                    if cut(call.callee) {
                        continue;
                    }
                    let incoming = mask[call.callee] & allow[i] & !mask[i];
                    if incoming != 0 {
                        mask[i] |= incoming;
                        for (bit, w) in wit[i].iter_mut().enumerate() {
                            if incoming & (1 << bit) != 0 {
                                *w = Some(Witness::Via(call.line, call.callee));
                            }
                        }
                        changed = true;
                    }
                }
            }
        }
        (mask, wit)
    }

    /// Render the flow chain that carried class `bit` into `node`, as
    /// human-readable steps ending at the local introduction point.
    #[must_use]
    pub fn trace(&self, node: usize, bit: usize, wit: &[[Option<Witness>; 3]]) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = node;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 32 {
                out.push("... (trace truncated)".to_string());
                break;
            }
            match wit[cur][bit] {
                Some(Witness::Local(line)) => {
                    out.push(format!(
                        "fn `{}` introduces it at {}:{line}",
                        self.nodes[cur].qualified(),
                        self.path_of(cur),
                    ));
                    break;
                }
                Some(Witness::Via(line, callee)) => {
                    out.push(format!(
                        "fn `{}` inherits it via call to `{}` at {}:{line}",
                        self.nodes[cur].qualified(),
                        self.nodes[callee].qualified(),
                        self.path_of(cur),
                    ));
                    cur = callee;
                }
                None => break,
            }
        }
        out
    }
}
