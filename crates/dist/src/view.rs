//! Per-node k-hop local views — the product of the CC (contention
//! collection) exchange.
//!
//! A node cannot see the whole topology; it learns, within `k` hops,
//! which peers exist and their `(degree, load)` pairs, and estimates the
//! Path Contention Cost to each of them *through its local subgraph*.
//! Estimates are conservative: paths leaving the k-hop ball are
//! invisible, so a local estimate is never lower than the true global
//! cost restricted to local routes.

use peercache_core::Network;
use peercache_graph::paths::{k_hop_neighborhood, AllPairsPaths, PathSelection};
use peercache_graph::NodeId;

use crate::error::ProtocolError;
use crate::protocol::{MessageKind, MessageStats};

/// One node's view of its k-hop neighborhood.
#[derive(Debug, Clone)]
pub struct LocalView {
    center: NodeId,
    members: Vec<NodeId>,
    cost: Vec<f64>,
    hops: Vec<u32>,
}

impl LocalView {
    /// The node owning this view.
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// Peers within k hops (sorted by id, center excluded).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Estimated Path Contention Cost from the center to `members()[idx]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    // Out-of-range `idx` panics by documented contract (`# Panics`).
    #[allow(clippy::indexing_slicing)]
    pub fn cost(&self, idx: usize) -> f64 {
        self.cost[idx]
    }

    /// Hop distance from the center to `members()[idx]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    // Out-of-range `idx` panics by documented contract (`# Panics`).
    #[allow(clippy::indexing_slicing)]
    pub fn hops(&self, idx: usize) -> u32 {
        self.hops[idx]
    }

    /// Index of `node` within [`LocalView::members`], if visible.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// Largest finite member cost (0 for an empty view).
    pub fn max_cost(&self) -> f64 {
        self.cost.iter().copied().fold(0.0, f64::max)
    }
}

/// Builds every client's local view for the network's current state and
/// accounts the CC message traffic (one request + one reply per member).
///
/// # Errors
///
/// Returns [`ProtocolError`] if a k-hop member cannot be mapped into its
/// induced subgraph — only possible if the graph mutates mid-build.
pub fn build_views(
    net: &Network,
    k_hops: u32,
) -> Result<(Vec<LocalView>, MessageStats), ProtocolError> {
    let graph = net.graph();
    let mut stats = MessageStats::default();
    let mut views = Vec::with_capacity(graph.node_count());
    for center in graph.nodes() {
        let members = k_hop_neighborhood(graph, center, k_hops);
        if center != net.producer() {
            stats.add(MessageKind::Cc, 2 * members.len() as u64);
        }
        // Induced subgraph over {center} ∪ members with *global* node
        // terms (each node reports its own degree and load).
        let mut keep = Vec::with_capacity(members.len() + 1);
        keep.push(center);
        keep.extend_from_slice(&members);
        keep.sort_unstable();
        let (sub, originals) = graph.induced_subgraph(&keep)?;
        let terms: Vec<f64> = originals
            .iter()
            .map(|&o| graph.degree(o) as f64 * (1.0 + net.used(o) as f64))
            .collect();
        let paths = AllPairsPaths::compute(&sub, &terms, PathSelection::FewestHops)?;
        let local_index = |node: NodeId| -> Result<NodeId, ProtocolError> {
            originals
                .iter()
                .position(|&o| o == node)
                .map(NodeId::new)
                .ok_or(ProtocolError::ViewMemberMissing {
                    center,
                    member: node,
                })
        };
        let center_local = local_index(center)?;
        let mut cost = Vec::with_capacity(members.len());
        let mut hops = Vec::with_capacity(members.len());
        for &m in &members {
            let m_local = local_index(m)?;
            cost.push(paths.cost(center_local, m_local));
            hops.push(paths.hops(center_local, m_local).unwrap_or(u32::MAX));
        }
        views.push(LocalView {
            center,
            members,
            cost,
            hops,
        });
    }
    Ok((views, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_core::workload::paper_grid;
    use peercache_core::ChunkId;

    #[test]
    fn two_hop_view_of_a_grid_center() {
        let net = paper_grid(5).unwrap();
        let (views, stats) = build_views(&net, 2).unwrap();
        let center = &views[12];
        assert_eq!(center.center(), NodeId::new(12));
        assert_eq!(center.members().len(), 12);
        assert!(stats[MessageKind::Cc] > 0);
    }

    #[test]
    fn view_costs_match_global_costs_when_paths_stay_local() {
        let net = paper_grid(4).unwrap();
        let (views, _) = build_views(&net, 1).unwrap();
        // Adjacent pair: local estimate equals the exact two-term cost.
        let v = &views[0];
        let idx = v.index_of(NodeId::new(1)).unwrap();
        // degree(0) = 2, degree(1) = 3, nothing cached.
        assert_eq!(v.cost(idx), 2.0 + 3.0);
        assert_eq!(v.hops(idx), 1);
    }

    #[test]
    fn views_reflect_cached_load() {
        let mut net = paper_grid(4).unwrap();
        let (before, _) = build_views(&net, 1).unwrap();
        net.cache(NodeId::new(1), ChunkId::new(0)).unwrap();
        let (after, _) = build_views(&net, 1).unwrap();
        let idx = before[0].index_of(NodeId::new(1)).unwrap();
        assert!(after[0].cost(idx) > before[0].cost(idx));
    }

    #[test]
    fn producer_sends_no_cc_traffic() {
        let net = paper_grid(3).unwrap(); // producer clamped to node 8? no: min(9, 8) = 8
        let (_, stats) = build_views(&net, 2).unwrap();
        // Every client pays 2 messages per member; just sanity-check the
        // total is consistent with 8 clients.
        assert!(stats[MessageKind::Cc] >= 16);
    }

    #[test]
    fn larger_k_sees_no_smaller_costs() {
        let net = paper_grid(5).unwrap();
        let (k1, _) = build_views(&net, 1).unwrap();
        let (k2, _) = build_views(&net, 2).unwrap();
        for (v1, v2) in k1.iter().zip(&k2) {
            for (i, &m) in v1.members().iter().enumerate() {
                let j = v2.index_of(m).unwrap();
                // More topology visible => equal or cheaper local route.
                assert!(v2.cost(j) <= v1.cost(i) + 1e-9);
            }
        }
    }
}
