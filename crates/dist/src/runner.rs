//! [`DistributedPlanner`] — Algorithm 2 as a drop-in planner.
//!
//! Runs one protocol round per chunk on the evolving caching state and
//! reports placements with the same cost model as every centralized
//! planner (so "Dist" is directly comparable in the figures), plus the
//! per-type message statistics §IV-D analyzes.

use std::cell::RefCell;

use peercache_core::costs::CostWeights;
use peercache_core::instance::ConflInstance;
use peercache_core::placement::Placement;
use peercache_core::planner::{
    chunk_span, commit_chunk, finish_chunk_span, prune_unused_facilities, CachePlanner,
};
use peercache_core::{ChunkId, CoreError, Network};
use peercache_graph::paths::PathSelection;

use peercache_obs as obs;

use crate::engine::{LossConfig, Tick};
use crate::protocol::MessageStats;
use crate::sim::{run_chunk_round, SimConfig};
use crate::view::build_views;

/// Configuration of the distributed planner.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Scope of local control messages in hops (the paper picks 2 as
    /// the overhead/performance sweet spot, Fig. 3).
    pub k_hops: u32,
    /// Protocol bid parameters.
    pub sim: SimConfig,
    /// Objective weights used when reporting costs.
    pub weights: CostWeights,
    /// Path routing model used when reporting costs.
    pub selection: PathSelection,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            k_hops: 2,
            sim: SimConfig::default(),
            weights: CostWeights::default(),
            selection: PathSelection::FewestHops,
        }
    }
}

/// Per-run report: message traffic and convergence times per chunk.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Message counters summed over all chunk rounds (CC included).
    pub messages: MessageStats,
    /// Message counters for each chunk's round (CC included), in chunk
    /// order; `messages` is their sum.
    pub per_chunk: Vec<MessageStats>,
    /// Ticks to convergence, one entry per chunk.
    pub ticks_per_chunk: Vec<Tick>,
    /// Clients that fell back to the producer, per chunk.
    pub fallbacks_per_chunk: Vec<usize>,
    /// TIGHT/SPAN retransmissions across all rounds.
    pub retries: u64,
    /// Lease-expiry depositions across all rounds.
    pub depositions: u64,
    /// [`crate::ProtocolError`] occurrences the run survived without
    /// aborting (currently engine payload misses), across all rounds.
    pub protocol_errors: u64,
    /// Kind of the first such error (see [`crate::ProtocolError::kind`]),
    /// when any occurred.
    pub first_error: Option<String>,
}

/// The distributed planner ("Dist" in the figures).
#[derive(Debug, Clone, Default)]
pub struct DistributedPlanner {
    /// Planner parameters.
    pub config: DistributedConfig,
    last_report: RefCell<RunReport>,
}

impl DistributedPlanner {
    /// Creates a planner with explicit parameters.
    pub fn new(config: DistributedConfig) -> Self {
        DistributedPlanner {
            config,
            last_report: RefCell::new(RunReport::default()),
        }
    }

    /// Creates a planner with the default protocol limited to `k` hops.
    pub fn with_k_hops(k: u32) -> Self {
        DistributedPlanner::new(DistributedConfig {
            k_hops: k,
            ..Default::default()
        })
    }

    /// Creates a planner with message-loss fault injection.
    pub fn with_loss(loss: LossConfig) -> Self {
        let mut config = DistributedConfig::default();
        config.sim.loss = loss;
        DistributedPlanner::new(config)
    }

    /// The message/convergence report of the most recent
    /// [`CachePlanner::plan`] call.
    pub fn last_report(&self) -> RunReport {
        self.last_report.borrow().clone()
    }
}

impl CachePlanner for DistributedPlanner {
    fn name(&self) -> &str {
        "Dist"
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        if self.config.k_hops == 0 {
            return Err(CoreError::InvalidParameter(
                "k_hops must be at least 1".into(),
            ));
        }
        let mut report = RunReport::default();
        let mut placement = Placement::default();
        let mut plan_span = obs::span!(
            "dist.plan",
            chunks = chunk_count,
            k_hops = self.config.k_hops
        );
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let planner_span = chunk_span("Dist", chunk);
            // Carry the causal trace id so the RAII round summary and
            // the per-message spans of the same round can be joined.
            let round_span = obs::span!(
                "dist.round",
                chunk = q,
                trace = crate::sim::round_trace_id(net, &self.config.sim, chunk)
            );
            // CC exchange against the current caching state.
            let (views, cc_stats) = build_views(net, self.config.k_hops)?;
            let mut round_stats = cc_stats;
            let outcome = run_chunk_round(net, &views, chunk, &self.config.sim);
            round_stats.merge(&outcome.stats);
            report.messages.merge(&round_stats);
            report.per_chunk.push(round_stats);
            report.ticks_per_chunk.push(outcome.ticks);
            report.fallbacks_per_chunk.push(outcome.producer_fallbacks);
            report.retries += outcome.retries;
            report.depositions += outcome.depositions;
            if outcome.protocol_errors > 0 {
                report.protocol_errors += outcome.protocol_errors;
                if report.first_error.is_none() {
                    // The engine's only survivable bookkeeping fault.
                    report.first_error = Some("MissingPayload".to_string());
                }
            }
            emit_round_record(round_span, &round_stats, &outcome);
            // Report costs with the shared global model so Dist is
            // comparable with Appx/Brtf/Hopc/Cont.
            let inst = ConflInstance::build_for_chunk(
                net,
                chunk,
                self.config.weights,
                self.config.selection,
            )?;
            // No improving-removal cleanup here: that pass needs global
            // information a distributed node does not have. Only the
            // assignment-level prune (an artifact of reporting) runs.
            let admins = prune_unused_facilities(net, &inst, &outcome.admins);
            let cp = commit_chunk(net, &inst, chunk, &admins)?;
            finish_chunk_span(planner_span, &cp);
            placement.push(cp);
        }
        plan_span.add_field("messages_total", obs::Value::from(report.messages.total()));
        plan_span.add_field("dropped", obs::Value::from(report.messages.dropped));
        drop(plan_span);
        *self.last_report.borrow_mut() = report;
        Ok(placement)
    }
}

/// Closes one chunk round's span with the per-kind delivered counters,
/// drops, convergence ticks, and election outcome.
fn emit_round_record(
    mut span: obs::Span,
    stats: &MessageStats,
    outcome: &crate::sim::RoundOutcome,
) {
    if !span.is_recording() {
        return;
    }
    for (kind, n) in stats.per_kind() {
        span.add_field(kind.label(), obs::Value::from(n));
    }
    span.add_field("dropped", obs::Value::from(stats.dropped));
    span.add_field("ticks", obs::Value::from(outcome.ticks));
    span.add_field("admins", obs::Value::from(outcome.admins.len()));
    span.add_field(
        "producer_fallbacks",
        obs::Value::from(outcome.producer_fallbacks),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MessageKind;
    use peercache_core::metrics;
    use peercache_core::workload::paper_grid;

    #[test]
    fn plans_all_chunks_and_reports_traffic() {
        let mut net = paper_grid(5).unwrap();
        let planner = DistributedPlanner::default();
        let placement = planner.plan(&mut net, 3).unwrap();
        assert_eq!(placement.chunks().len(), 3);
        let report = planner.last_report();
        assert_eq!(report.ticks_per_chunk.len(), 3);
        assert!(report.messages.total() > 0);
        assert!(report.messages[MessageKind::Cc] > 0);
        assert!(report.messages[MessageKind::Npi] > 0);
    }

    #[test]
    fn per_chunk_stats_sum_to_the_report_total() {
        let mut net = paper_grid(5).unwrap();
        let planner = DistributedPlanner::default();
        planner.plan(&mut net, 3).unwrap();
        let report = planner.last_report();
        assert_eq!(report.per_chunk.len(), 3);
        let mut summed = MessageStats::default();
        for s in &report.per_chunk {
            summed.merge(s);
        }
        assert_eq!(summed, report.messages);
        // The delivered/dropped split is an invariant of the report:
        // total() is exactly the per-kind sum, drops live outside it.
        let by_kind: u64 = report.messages.per_kind().map(|(_, n)| n).sum();
        assert_eq!(report.messages.total(), by_kind);
    }

    #[test]
    fn message_complexity_is_within_the_papers_bound() {
        // §IV-D: O(QN + N^2) messages. Check against a generous
        // constant on two sizes.
        for side in [4usize, 6] {
            let mut net = paper_grid(side).unwrap();
            let q = 3;
            let planner = DistributedPlanner::default();
            planner.plan(&mut net, q).unwrap();
            let n = (side * side) as u64;
            let bound = 20 * (q as u64 * n + q as u64 * n * n);
            let total = planner.last_report().messages.total();
            assert!(
                total <= bound,
                "{side}x{side}: {total} messages exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn distributed_spreads_load_like_the_paper() {
        let mut net = paper_grid(6).unwrap();
        DistributedPlanner::default().plan(&mut net, 5).unwrap();
        let loads: Vec<usize> = net.clients().map(|c| net.used(c)).collect();
        let g = metrics::gini(&loads);
        assert!(
            g < 0.6,
            "distributed gini {g} should beat fixed-set baselines"
        );
        let distinct = loads.iter().filter(|&&l| l > 0).count();
        assert!(distinct >= 8, "only {distinct} caching nodes used");
    }

    #[test]
    fn zero_k_hops_is_rejected() {
        let mut net = paper_grid(3).unwrap();
        let planner = DistributedPlanner::with_k_hops(0);
        assert!(matches!(
            planner.plan(&mut net, 1),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn lossy_runs_complete() {
        let mut net = paper_grid(4).unwrap();
        let planner = DistributedPlanner::with_loss(LossConfig {
            drop_probability: 0.2,
            seed: 3,
        });
        let placement = planner.plan(&mut net, 2).unwrap();
        assert_eq!(placement.chunks().len(), 2);
        assert!(planner.last_report().messages.dropped > 0);
    }

    #[test]
    fn deterministic_given_fixed_seeds() {
        let run = || {
            let mut net = paper_grid(4).unwrap();
            let planner = DistributedPlanner::default();
            let p = planner.plan(&mut net, 3).unwrap();
            (p, planner.last_report().messages)
        };
        let (p1, m1) = run();
        let (p2, m2) = run();
        assert_eq!(p1, p2);
        assert_eq!(m1, m2);
    }
}
