//! SWIM-style failure detection: ping / ping-req / suspect / confirm.
//!
//! The world layer previously learned about node deaths by fiat — a
//! scripted [`crate::chaos::FaultPlan::death`] entry flipped the node
//! off and the planner repaired around it. Real edge deployments have
//! no such oracle: nodes must *detect* death through lost probes, and
//! naive timeout detectors confuse a lossy link with a dead peer. This
//! module implements the SWIM detector (Das et al., DSN'02) over the
//! same deliver-closure transport the chaos harness drives:
//!
//! 1. Each protocol period every live member probes one peer, chosen
//!    by a per-member shuffled ring (round-robin with reshuffle, the
//!    SWIM rule that bounds worst-case first-detection time).
//! 2. A failed direct probe triggers `ping_req_fanout` indirect probes
//!    through other members, so a single flapping or grey link cannot
//!    produce a false positive by itself.
//! 3. Only when the direct and all indirect probes fail is the target
//!    marked **Suspect** — not dead. A suspect that answers any later
//!    probe is refuted and returns to Alive with a bumped incarnation
//!    (SWIM's refutation counter, so stale suspicion never outranks
//!    fresh liveness).
//! 4. A suspicion that survives [`SwimConfig::suspect_timeout`] ticks
//!    is **Confirmed**: terminal, and surfaced through
//!    [`Swim::take_confirmed`] for the caller to translate into the
//!    world's `NodeDeparted` machinery.
//!
//! Everything is deterministic for a given [`SwimConfig::seed`]: ring
//! shuffles come from one ChaCha8 stream, probers run in ascending id
//! order, and the transport closure is the only source of outcome
//! variation — replaying the same fault trace replays the same
//! membership history byte for byte.

use std::collections::BTreeMap;

use peercache_graph::NodeId;
use peercache_obs as obs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::Tick;

/// Tuning knobs of the SWIM detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwimConfig {
    /// Ticks between protocol periods (every live member sends one
    /// direct probe per period).
    pub ping_period: Tick,
    /// Ticks a member may stay Suspect before it is Confirmed dead.
    pub suspect_timeout: Tick,
    /// Number of indirect probes relayed through other members after a
    /// failed direct probe.
    pub ping_req_fanout: usize,
    /// Seed of the ring-shuffle RNG stream.
    pub seed: u64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            ping_period: 4,
            suspect_timeout: 16,
            ping_req_fanout: 2,
            seed: 0x5717,
        }
    }
}

impl SwimConfig {
    /// Whether the parameters are usable (nonzero periods).
    pub fn is_valid(&self) -> bool {
        self.ping_period >= 1 && self.suspect_timeout >= 1
    }
}

/// Detector state of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Answering probes; `incarnation` counts refutations survived.
    Alive {
        /// Refutation counter: bumped each time suspicion is refuted.
        incarnation: u64,
    },
    /// Missed a direct and all indirect probes; pending confirmation.
    Suspect {
        /// Incarnation at suspicion time.
        incarnation: u64,
        /// Tick the suspicion was raised.
        since: Tick,
    },
    /// Declared dead (terminal).
    Confirmed {
        /// Tick of the confirmation.
        at: Tick,
    },
}

/// What a membership event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEventKind {
    /// A member entered the Suspect state.
    Suspected,
    /// A suspected member answered a probe and returned to Alive.
    Refuted,
    /// A suspicion timed out; the member is Confirmed dead.
    Confirmed,
}

/// One entry of the membership history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Tick of the transition.
    pub tick: Tick,
    /// The member whose state changed.
    pub node: NodeId,
    /// The transition.
    pub kind: MembershipEventKind,
}

/// The deterministic SWIM detector over a fixed member set.
///
/// The transport is a caller-supplied closure `(now, from, to) ->
/// bool`: whether a single one-way message from `from` to `to` gets
/// through at tick `now`. A probe is a round trip (two calls), an
/// indirect probe is four; wiring the closure to
/// [`crate::chaos::ChaosState::reachable`] plus grey-node draws makes
/// the detector see exactly the faults the protocol sees.
#[derive(Debug, Clone)]
pub struct Swim {
    cfg: SwimConfig,
    members: Vec<NodeId>,
    states: BTreeMap<NodeId, MemberState>,
    /// Per-member shuffled probe ring and cursor (SWIM's round-robin
    /// target selection), indexed like `members`.
    rings: Vec<(Vec<NodeId>, usize)>,
    rng: ChaCha8Rng,
    events: Vec<MembershipEvent>,
    /// Confirmations not yet drained by [`Swim::take_confirmed`].
    pending_confirmed: Vec<NodeId>,
}

impl Swim {
    /// A detector over `members`, all initially Alive at incarnation 0.
    pub fn new(members: impl IntoIterator<Item = NodeId>, cfg: SwimConfig) -> Self {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        let states = members
            .iter()
            .map(|&n| (n, MemberState::Alive { incarnation: 0 }))
            .collect();
        let rings = members.iter().map(|_| (Vec::new(), 0)).collect();
        Swim {
            cfg,
            members,
            states,
            rings,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            events: Vec::new(),
            pending_confirmed: Vec::new(),
        }
    }

    /// The member set, ascending.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Current state of a member (`None` for a stranger).
    pub fn state(&self, node: NodeId) -> Option<MemberState> {
        self.states.get(&node).copied()
    }

    /// Whether a member is not (yet) Confirmed dead.
    pub fn is_live(&self, node: NodeId) -> bool {
        !matches!(
            self.states.get(&node),
            None | Some(MemberState::Confirmed { .. })
        )
    }

    /// Members not Confirmed dead, ascending.
    pub fn live_members(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|&n| self.is_live(n))
            .collect()
    }

    /// The full membership history so far.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// Drains the members confirmed dead since the last drain — the
    /// hook the world layer turns into `NodeDeparted` events.
    pub fn take_confirmed(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.pending_confirmed)
    }

    /// Advances the detector to `now`, probing when a protocol period
    /// boundary is hit and expiring suspicions every tick.
    ///
    /// `deliver(now, from, to)` reports one-way message success.
    pub fn tick(&mut self, now: Tick, deliver: &mut impl FnMut(Tick, NodeId, NodeId) -> bool) {
        if self.cfg.is_valid() && now.is_multiple_of(self.cfg.ping_period) {
            self.probe_round(now, deliver);
        }
        self.expire_suspicions(now);
    }

    /// One protocol period: every live member probes its next ring
    /// target, in ascending prober id (the deterministic schedule).
    fn probe_round(&mut self, now: Tick, deliver: &mut impl FnMut(Tick, NodeId, NodeId) -> bool) {
        for slot in 0..self.members.len() {
            let Some(&prober) = self.members.get(slot) else {
                continue;
            };
            if !self.is_live(prober) {
                continue;
            }
            let Some(target) = self.next_target(slot, prober) else {
                continue;
            };
            self.probe(now, prober, target, deliver);
        }
    }

    /// The next probe target from `prober`'s ring, reshuffling when the
    /// ring is exhausted; skips dead members and the prober itself.
    fn next_target(&mut self, slot: usize, prober: NodeId) -> Option<NodeId> {
        // One reshuffle attempt plus a full scan of the fresh ring is
        // enough: if no live non-self member exists, give up.
        for _ in 0..2 {
            let refill = match self.rings.get(slot) {
                Some((ring, cursor)) => *cursor >= ring.len(),
                None => return None,
            };
            if refill {
                let mut ring: Vec<NodeId> = self
                    .members
                    .iter()
                    .copied()
                    .filter(|&n| n != prober && self.is_live(n))
                    .collect();
                // Fisher–Yates off the shared seeded stream; probers
                // run in a fixed order, so draws are deterministic.
                for i in (1..ring.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    ring.swap(i, j);
                }
                if let Some(entry) = self.rings.get_mut(slot) {
                    *entry = (ring, 0);
                }
            }
            if let Some((ring, cursor)) = self.rings.get_mut(slot) {
                while let Some(&candidate) = ring.get(*cursor) {
                    *cursor += 1;
                    if candidate != prober
                        && !matches!(
                            self.states.get(&candidate),
                            None | Some(MemberState::Confirmed { .. })
                        )
                    {
                        return Some(candidate);
                    }
                }
            }
        }
        None
    }

    /// One probe: direct round trip, then `ping_req_fanout` indirect
    /// round trips on failure; updates the target's state.
    fn probe(
        &mut self,
        now: Tick,
        prober: NodeId,
        target: NodeId,
        deliver: &mut impl FnMut(Tick, NodeId, NodeId) -> bool,
    ) {
        if obs::enabled() {
            obs::counter("dist.swim.ping").incr();
        }
        let mut answered = deliver(now, prober, target) && deliver(now, target, prober);
        if !answered {
            for proxy in self.proxies(prober, target) {
                // ping-req: prober → proxy → target → proxy → prober.
                if deliver(now, prober, proxy)
                    && deliver(now, proxy, target)
                    && deliver(now, target, proxy)
                    && deliver(now, proxy, prober)
                {
                    answered = true;
                    break;
                }
            }
        }
        match (answered, self.states.get(&target).copied()) {
            (true, Some(MemberState::Suspect { incarnation, .. })) => {
                // Refutation: the suspect proved liveness, so it rejoins
                // with a higher incarnation that outranks the suspicion.
                self.states.insert(
                    target,
                    MemberState::Alive {
                        incarnation: incarnation.saturating_add(1),
                    },
                );
                self.push_event(now, target, MembershipEventKind::Refuted);
                if obs::enabled() {
                    obs::counter("dist.swim.refute").incr();
                }
            }
            (false, Some(MemberState::Alive { incarnation })) => {
                self.states.insert(
                    target,
                    MemberState::Suspect {
                        incarnation,
                        since: now,
                    },
                );
                self.push_event(now, target, MembershipEventKind::Suspected);
                if obs::enabled() {
                    obs::counter("dist.swim.suspect").incr();
                }
            }
            // Alive and answering, already Suspect (timeout pending), or
            // Confirmed (terminal): no transition.
            _ => {}
        }
    }

    /// Up to `ping_req_fanout` live relays, lowest ids first — a fixed
    /// choice keeps the schedule independent of RNG state so indirect
    /// probing draws no randomness (replay stability).
    fn proxies(&self, prober: NodeId, target: NodeId) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|&w| w != prober && w != target && self.is_live(w))
            .take(self.cfg.ping_req_fanout)
            .collect()
    }

    /// Confirms every suspicion older than the timeout.
    fn expire_suspicions(&mut self, now: Tick) {
        let expired: Vec<NodeId> = self
            .states
            .iter()
            .filter_map(|(&n, &s)| match s {
                MemberState::Suspect { since, .. }
                    if now.saturating_sub(since) >= self.cfg.suspect_timeout =>
                {
                    Some(n)
                }
                _ => None,
            })
            .collect();
        for node in expired {
            self.states.insert(node, MemberState::Confirmed { at: now });
            self.push_event(now, node, MembershipEventKind::Confirmed);
            self.pending_confirmed.push(node);
            if obs::enabled() {
                obs::counter("dist.swim.confirm").incr();
            }
        }
    }

    fn push_event(&mut self, tick: Tick, node: NodeId, kind: MembershipEventKind) {
        self.events.push(MembershipEvent { tick, node, kind });
    }

    /// A deterministic digest of the full state + history, for replay
    /// equality checks across runs.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (&n, &s) in &self.states {
            mix(n.index() as u64);
            match s {
                MemberState::Alive { incarnation } => {
                    mix(1);
                    mix(incarnation);
                }
                MemberState::Suspect { incarnation, since } => {
                    mix(2);
                    mix(incarnation);
                    mix(since);
                }
                MemberState::Confirmed { at } => {
                    mix(3);
                    mix(at);
                }
            }
        }
        for e in &self.events {
            mix(e.tick);
            mix(e.node.index() as u64);
            mix(match e.kind {
                MembershipEventKind::Suspected => 11,
                MembershipEventKind::Refuted => 12,
                MembershipEventKind::Confirmed => 13,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn quorum(members: usize) -> Swim {
        Swim::new((0..members).map(n), SwimConfig::default())
    }

    /// Transport where everything is delivered.
    fn perfect() -> impl FnMut(Tick, NodeId, NodeId) -> bool {
        |_, _, _| true
    }

    #[test]
    fn a_healthy_cluster_never_suspects_anyone() {
        let mut swim = quorum(5);
        let mut net = perfect();
        for t in 0..200 {
            swim.tick(t, &mut net);
        }
        assert!(swim.events().is_empty());
        assert_eq!(swim.live_members().len(), 5);
        assert!(swim.take_confirmed().is_empty());
    }

    #[test]
    fn a_dead_node_is_suspected_then_confirmed() {
        let mut swim = quorum(4);
        let dead = n(3);
        let mut net = move |_t: Tick, from: NodeId, to: NodeId| from != dead && to != dead;
        for t in 0..200 {
            swim.tick(t, &mut net);
        }
        assert!(matches!(
            swim.state(dead),
            Some(MemberState::Confirmed { .. })
        ));
        assert_eq!(swim.take_confirmed(), vec![dead]);
        assert!(!swim.is_live(dead));
        assert_eq!(swim.live_members(), vec![n(0), n(1), n(2)]);
        // The history shows the two-step path: Suspected before Confirmed.
        let kinds: Vec<MembershipEventKind> = swim
            .events()
            .iter()
            .filter(|e| e.node == dead)
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                MembershipEventKind::Suspected,
                MembershipEventKind::Confirmed
            ]
        );
    }

    #[test]
    fn confirmation_is_terminal_even_if_the_node_answers_again() {
        let mut swim = quorum(3);
        let flaky = n(2);
        // Dead long enough to be confirmed...
        let mut down = move |_t: Tick, from: NodeId, to: NodeId| from != flaky && to != flaky;
        for t in 0..100 {
            swim.tick(t, &mut down);
        }
        assert!(matches!(
            swim.state(flaky),
            Some(MemberState::Confirmed { .. })
        ));
        let events_before = swim.events().len();
        // ...then the network heals: the confirmation must not revert.
        let mut up = perfect();
        for t in 100..200 {
            swim.tick(t, &mut up);
        }
        assert!(matches!(
            swim.state(flaky),
            Some(MemberState::Confirmed { .. })
        ));
        assert_eq!(swim.events().len(), events_before);
    }

    #[test]
    fn same_seed_and_transport_replay_the_same_history() {
        let script = |swim: &mut Swim| {
            let dead = n(1);
            let mut net = move |t: Tick, from: NodeId, to: NodeId| {
                // node 1 dies at tick 40; node 4's inbound links flap.
                if t >= 40 && (from == dead || to == dead) {
                    return false;
                }
                !(to == n(4) && t.is_multiple_of(7))
            };
            for t in 0..300 {
                swim.tick(t, &mut net);
            }
        };
        let mut a = quorum(6);
        let mut b = quorum(6);
        script(&mut a);
        script(&mut b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), b.events());
        let mut c = Swim::new(
            (0..6).map(n),
            SwimConfig {
                seed: 0xBEEF,
                ..SwimConfig::default()
            },
        );
        script(&mut c);
        // A different seed may reorder probes but must reach the same
        // verdicts: node 1 confirmed, everyone else live.
        assert!(!c.is_live(n(1)));
        assert_eq!(c.live_members().len(), 5);
    }
}
