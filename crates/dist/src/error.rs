//! Typed errors for the distributed protocol paths.
//!
//! Lint rule P1 forbids `unwrap`/`expect`/`panic!` in `crates/dist/src/**`:
//! the bidding protocol must stay panic-free under adversarial schedules
//! (message loss, node death mid-round). Conditions that were previously
//! `expect`ed surface here as variants instead.

use std::fmt;

use peercache_graph::{GraphError, NodeId};

/// An error raised by the distributed protocol layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A graph operation on a local view failed (invalid node, short term
    /// vector).
    Graph(GraphError),
    /// A k-hop view member vanished between neighborhood discovery and
    /// subgraph construction.
    ViewMemberMissing {
        /// The node whose view was being built.
        center: NodeId,
        /// The member that could not be located in the induced subgraph.
        member: NodeId,
    },
    /// The event queue referenced a payload slot that holds no delivery —
    /// the engine's queue/payload bookkeeping diverged.
    MissingPayload {
        /// The payload slot the queue entry pointed at.
        slot: usize,
    },
}

impl ProtocolError {
    /// Short stable name of the error variant, for counters and run
    /// reports (see [`crate::RunReport::first_error`]).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolError::Graph(_) => "Graph",
            ProtocolError::ViewMemberMissing { .. } => "ViewMemberMissing",
            ProtocolError::MissingPayload { .. } => "MissingPayload",
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Graph(e) => write!(f, "local view graph operation failed: {e}"),
            ProtocolError::ViewMemberMissing { center, member } => write!(
                f,
                "k-hop member {member} of node {center} missing from the induced subgraph"
            ),
            ProtocolError::MissingPayload { slot } => {
                write!(f, "event queue referenced empty payload slot {slot}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ProtocolError {
    fn from(e: GraphError) -> Self {
        ProtocolError::Graph(e)
    }
}

impl From<ProtocolError> for peercache_core::CoreError {
    fn from(e: ProtocolError) -> Self {
        peercache_core::CoreError::Protocol(e.to_string())
    }
}
