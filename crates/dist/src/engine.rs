//! Discrete-event core: virtual clock, ordered event queue, hop-delayed
//! delivery and optional message loss.
//!
//! Control messages travel one hop per tick; a message to a node `h`
//! hops away is delivered `h` ticks after it is sent. Events at the same
//! tick are processed in send order (a monotone sequence number), so
//! simulations are fully deterministic for a given seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use peercache_graph::NodeId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use peercache_obs as obs;

use crate::protocol::{Message, MessageKind, MessageStats};

/// Virtual time in ticks.
pub type Tick = u64;

/// A scheduled delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Delivery time.
    pub at: Tick,
    /// Receiving node.
    pub to: NodeId,
    /// The message.
    pub msg: Message,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueueKey {
    at: Tick,
    seq: u64,
}

/// Message-loss fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Probability that any single control message is silently dropped.
    pub drop_probability: f64,
    /// RNG seed for reproducible loss patterns.
    pub seed: u64,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            drop_probability: 0.0,
            seed: 0,
        }
    }
}

/// Random extra delivery delay — wireless links do not deliver in
/// lockstep; back-off and retransmission smear arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JitterConfig {
    /// Maximum extra ticks added to every delivery (uniform in
    /// `0..=max_extra_ticks`); 0 disables jitter.
    pub max_extra_ticks: u32,
    /// RNG seed for reproducible jitter patterns.
    pub seed: u64,
}

/// The event engine: a clock plus a delivery queue with statistics.
#[derive(Debug)]
pub struct Engine {
    now: Tick,
    seq: u64,
    queue: BinaryHeap<Reverse<(QueueKey, NodeId)>>,
    payloads: Vec<Option<Delivery>>,
    stats: MessageStats,
    loss: Option<(f64, ChaCha8Rng)>,
    jitter: Option<(u32, ChaCha8Rng)>,
    payload_misses: u64,
}

impl Engine {
    /// Creates an engine with no fault injection.
    pub fn new() -> Self {
        Engine {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            stats: MessageStats::default(),
            loss: None,
            jitter: None,
            payload_misses: 0,
        }
    }

    /// Creates an engine that drops messages per `loss`.
    pub fn with_loss(loss: LossConfig) -> Self {
        Engine::with_faults(loss, JitterConfig::default())
    }

    /// Creates an engine with message loss and delivery jitter.
    pub fn with_faults(loss: LossConfig, jitter: JitterConfig) -> Self {
        use rand::SeedableRng;
        let mut engine = Engine::new();
        if loss.drop_probability > 0.0 {
            engine.loss = Some((loss.drop_probability, ChaCha8Rng::seed_from_u64(loss.seed)));
        }
        if jitter.max_extra_ticks > 0 {
            engine.jitter = Some((
                jitter.max_extra_ticks,
                ChaCha8Rng::seed_from_u64(jitter.seed),
            ));
        }
        engine
    }

    /// Current virtual time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Delivered-message statistics so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Schedules `msg` to arrive at `to` after `delay_hops` ticks.
    ///
    /// Lossy engines may silently drop the message (counted in
    /// [`MessageStats::dropped`]).
    pub fn send(&mut self, to: NodeId, delay_hops: u32, msg: Message) {
        if let Some((p, rng)) = &mut self.loss {
            if rng.gen::<f64>() < *p {
                self.stats.dropped += 1;
                if obs::enabled() {
                    obs::counter("dist.msg.dropped").incr();
                }
                return;
            }
        }
        let extra = match &mut self.jitter {
            Some((max, rng)) => rng.gen_range(0..=*max),
            None => 0,
        };
        let key = QueueKey {
            at: self.now + Tick::from(delay_hops.max(1) + extra),
            seq: self.seq,
        };
        self.seq += 1;
        let slot = self.payloads.len();
        self.payloads.push(Some(Delivery {
            at: key.at,
            to,
            msg,
        }));
        // NodeId in the heap entry is only a tiebreak-stable payload
        // index carrier; the key orders deliveries.
        self.queue.push(Reverse((key, NodeId::new(slot))));
    }

    /// Pops the next delivery, advancing the clock to its time.
    /// Returns `None` when the queue is empty.
    pub fn next_delivery(&mut self) -> Option<Delivery> {
        // Every queue entry points at a filled payload slot by
        // construction (`send` pushes both together); if the bookkeeping
        // ever diverged, skipping the phantom entry (and counting it as
        // a [`crate::ProtocolError::MissingPayload`] occurrence for the
        // run report) beats panicking mid-protocol (lint rule P1).
        while let Some(Reverse((key, slot))) = self.queue.pop() {
            self.now = key.at;
            let Some(delivery) = self.payloads.get_mut(slot.index()).and_then(Option::take) else {
                self.payload_misses += 1;
                if obs::enabled() {
                    obs::counter("dist.engine.payload_miss").incr();
                }
                continue;
            };
            self.stats.record(delivery.msg.kind());
            if obs::enabled() {
                delivered_counter(delivery.msg.kind()).incr();
            }
            return Some(delivery);
        }
        None
    }

    /// Queue entries that pointed at an empty payload slot — each one is
    /// a would-be [`crate::ProtocolError::MissingPayload`], surfaced as
    /// a counter instead of an abort so the round can finish.
    pub fn payload_misses(&self) -> u64 {
        self.payload_misses
    }

    /// Peeks at the time of the next pending delivery.
    pub fn next_time(&self) -> Option<Tick> {
        self.queue.peek().map(|Reverse((key, _))| key.at)
    }

    /// Returns `true` if no deliveries are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Process-global delivered-message counter for one kind (snapshotted
/// into the trace by `obs::emit_metrics`).
fn delivered_counter(kind: MessageKind) -> &'static obs::Counter {
    match kind {
        MessageKind::Npi => obs::counter("dist.msg.npi"),
        MessageKind::Cc => obs::counter("dist.msg.cc"),
        MessageKind::Tight => obs::counter("dist.msg.tight"),
        MessageKind::Span => obs::counter("dist.msg.span"),
        MessageKind::Freeze => obs::counter("dist.msg.freeze"),
        MessageKind::NAdmin => obs::counter("dist.msg.nadmin"),
        MessageKind::BAdmin => obs::counter("dist.msg.badmin"),
        MessageKind::Ping => obs::counter("dist.msg.ping"),
        MessageKind::Pong => obs::counter("dist.msg.pong"),
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_core::ChunkId;

    fn msg() -> Message {
        Message::Tight {
            from: NodeId::new(0),
        }
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut e = Engine::new();
        e.send(NodeId::new(1), 3, msg());
        e.send(NodeId::new(2), 1, msg());
        let first = e.next_delivery().unwrap();
        assert_eq!(first.to, NodeId::new(2));
        assert_eq!(e.now(), 1);
        let second = e.next_delivery().unwrap();
        assert_eq!(second.to, NodeId::new(1));
        assert_eq!(e.now(), 3);
        assert!(e.is_idle());
    }

    #[test]
    fn same_tick_preserves_send_order() {
        let mut e = Engine::new();
        for i in 0..5 {
            e.send(NodeId::new(i), 2, msg());
        }
        for i in 0..5 {
            assert_eq!(e.next_delivery().unwrap().to, NodeId::new(i));
        }
    }

    #[test]
    fn zero_delay_is_clamped_to_one_tick() {
        let mut e = Engine::new();
        e.send(NodeId::new(0), 0, msg());
        assert_eq!(e.next_time(), Some(1));
    }

    #[test]
    fn stats_count_by_kind() {
        let mut e = Engine::new();
        e.send(NodeId::new(0), 1, msg());
        e.send(
            NodeId::new(0),
            1,
            Message::Npi {
                chunk: ChunkId::new(0),
            },
        );
        while e.next_delivery().is_some() {}
        assert_eq!(e.stats().get(MessageKind::Tight), 1);
        assert_eq!(e.stats().get(MessageKind::Npi), 1);
        assert_eq!(e.stats().total(), 2);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut e = Engine::with_loss(LossConfig {
            drop_probability: 1.0,
            seed: 1,
        });
        e.send(NodeId::new(0), 1, msg());
        assert!(e.is_idle());
        assert_eq!(e.stats().dropped, 1);
    }

    #[test]
    fn jitter_spreads_deliveries_deterministically() {
        let run = || {
            let mut e = Engine::with_faults(
                LossConfig::default(),
                JitterConfig {
                    max_extra_ticks: 5,
                    seed: 3,
                },
            );
            for i in 0..20 {
                e.send(NodeId::new(i), 1, msg());
            }
            let mut times = Vec::new();
            while let Some(d) = e.next_delivery() {
                times.push(d.at);
            }
            times
        };
        let a = run();
        assert_eq!(a, run());
        // Some deliveries were delayed beyond the base 1 tick.
        assert!(a.iter().any(|&t| t > 1));
        assert!(a.iter().all(|&t| t <= 6));
    }

    #[test]
    fn partial_loss_is_reproducible() {
        let run = |seed| {
            let mut e = Engine::with_loss(LossConfig {
                drop_probability: 0.5,
                seed,
            });
            for i in 0..100 {
                e.send(NodeId::new(i % 4), 1, msg());
            }
            e.stats().dropped
        };
        assert_eq!(run(7), run(7));
        assert!(run(7) > 10 && run(7) < 90);
    }
}
