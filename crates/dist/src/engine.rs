//! Discrete-event core: virtual clock, ordered event queue, hop-delayed
//! delivery and optional message loss.
//!
//! Control messages travel one hop per tick; a message to a node `h`
//! hops away is delivered `h` ticks after it is sent. Events at the same
//! tick are processed in send order (a monotone sequence number), so
//! simulations are fully deterministic for a given seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use peercache_graph::NodeId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use peercache_obs as obs;

use crate::protocol::{Message, MessageKind, MessageStats};

/// Virtual time in ticks.
pub type Tick = u64;

/// A scheduled delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Delivery time.
    pub at: Tick,
    /// Receiving node.
    pub to: NodeId,
    /// The message.
    pub msg: Message,
    /// When the message was sent (for delivery-latency histograms; the
    /// caller supplies its own clock, since the engine clock only
    /// advances on deliveries).
    pub sent: Tick,
    /// Whether this delivery is a chaos-injected duplicate copy.
    pub dup: bool,
    /// Causal identity of this message's span. All-zero when tracing is
    /// off; never read by protocol logic.
    pub ctx: obs::TraceContext,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueueKey {
    at: Tick,
    seq: u64,
}

/// Message-loss fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Probability that any single control message is silently dropped.
    pub drop_probability: f64,
    /// RNG seed for reproducible loss patterns.
    pub seed: u64,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            drop_probability: 0.0,
            seed: 0,
        }
    }
}

/// Random extra delivery delay — wireless links do not deliver in
/// lockstep; back-off and retransmission smear arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JitterConfig {
    /// Maximum extra ticks added to every delivery (uniform in
    /// `0..=max_extra_ticks`); 0 disables jitter.
    pub max_extra_ticks: u32,
    /// RNG seed for reproducible jitter patterns.
    pub seed: u64,
}

/// The event engine: a clock plus a delivery queue with statistics.
#[derive(Debug)]
pub struct Engine {
    now: Tick,
    seq: u64,
    queue: BinaryHeap<Reverse<(QueueKey, NodeId)>>,
    payloads: Vec<Option<Delivery>>,
    stats: MessageStats,
    loss: Option<(f64, ChaCha8Rng)>,
    jitter: Option<(u32, ChaCha8Rng)>,
    payload_misses: u64,
    /// Optional node → shard homes (see `peercache_core::sharded`);
    /// empty means cross-shard accounting is off.
    shard_of: Vec<u32>,
}

impl Engine {
    /// Creates an engine with no fault injection.
    pub fn new() -> Self {
        Engine {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            stats: MessageStats::default(),
            loss: None,
            jitter: None,
            payload_misses: 0,
            shard_of: Vec::new(),
        }
    }

    /// Creates an engine that drops messages per `loss`.
    pub fn with_loss(loss: LossConfig) -> Self {
        Engine::with_faults(loss, JitterConfig::default())
    }

    /// Creates an engine with message loss and delivery jitter.
    pub fn with_faults(loss: LossConfig, jitter: JitterConfig) -> Self {
        use rand::SeedableRng;
        let mut engine = Engine::new();
        if loss.drop_probability > 0.0 {
            engine.loss = Some((loss.drop_probability, ChaCha8Rng::seed_from_u64(loss.seed)));
        }
        if jitter.max_extra_ticks > 0 {
            engine.jitter = Some((
                jitter.max_extra_ticks,
                ChaCha8Rng::seed_from_u64(jitter.seed),
            ));
        }
        engine
    }

    /// Current virtual time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Delivered-message statistics so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Schedules `msg` to arrive at `to` after `delay_hops` ticks.
    ///
    /// Lossy engines may silently drop the message (counted in
    /// [`MessageStats::dropped`]).
    pub fn send(&mut self, to: NodeId, delay_hops: u32, msg: Message) {
        let sent = self.now;
        self.send_tagged(
            to,
            delay_hops,
            msg,
            sent,
            false,
            obs::TraceContext::default(),
        );
    }

    /// [`Engine::send`] with explicit telemetry: the caller's send time
    /// `sent` (for latency histograms), whether this is a chaos
    /// duplicate, and the message's causal span. Returns `false` when
    /// the lossy engine dropped the message, so the caller can record
    /// the drop fate against `ctx`.
    pub fn send_tagged(
        &mut self,
        to: NodeId,
        delay_hops: u32,
        msg: Message,
        sent: Tick,
        dup: bool,
        ctx: obs::TraceContext,
    ) -> bool {
        if let Some((p, rng)) = &mut self.loss {
            if rng.gen::<f64>() < *p {
                self.stats.dropped += 1;
                if obs::enabled() {
                    obs::counter("dist.msg.dropped").incr();
                }
                return false;
            }
        }
        let extra = match &mut self.jitter {
            Some((max, rng)) => rng.gen_range(0..=*max),
            None => 0,
        };
        let key = QueueKey {
            at: self.now + Tick::from(delay_hops.max(1) + extra),
            seq: self.seq,
        };
        self.seq += 1;
        let slot = self.payloads.len();
        self.payloads.push(Some(Delivery {
            at: key.at,
            to,
            msg,
            sent,
            dup,
            ctx,
        }));
        // NodeId in the heap entry is only a tiebreak-stable payload
        // index carrier; the key orders deliveries.
        self.queue.push(Reverse((key, NodeId::new(slot))));
        true
    }

    /// Pops the next delivery, advancing the clock to its time.
    /// Returns `None` when the queue is empty.
    pub fn next_delivery(&mut self) -> Option<Delivery> {
        // Every queue entry points at a filled payload slot by
        // construction (`send` pushes both together); if the bookkeeping
        // ever diverged, skipping the phantom entry (and counting it as
        // a [`crate::ProtocolError::MissingPayload`] occurrence for the
        // run report) beats panicking mid-protocol (lint rule P1).
        while let Some(Reverse((key, slot))) = self.queue.pop() {
            self.now = key.at;
            let Some(delivery) = self.payloads.get_mut(slot.index()).and_then(Option::take) else {
                self.payload_misses += 1;
                if obs::enabled() {
                    obs::counter("dist.engine.payload_miss").incr();
                }
                continue;
            };
            self.stats.record(delivery.msg.kind());
            if delivery.dup {
                self.stats.record_duplicate();
            }
            if obs::enabled() {
                delivered_counter(delivery.msg.kind()).incr();
                latency_histogram(delivery.msg.kind())
                    .record(delivery.at.saturating_sub(delivery.sent));
            }
            return Some(delivery);
        }
        None
    }

    /// Queue entries that pointed at an empty payload slot — each one is
    /// a would-be [`crate::ProtocolError::MissingPayload`], surfaced as
    /// a counter instead of an abort so the round can finish.
    pub fn payload_misses(&self) -> u64 {
        self.payload_misses
    }

    /// Peeks at the time of the next pending delivery.
    pub fn next_time(&self) -> Option<Tick> {
        self.queue.peek().map(|Reverse((key, _))| key.at)
    }

    /// Pops the next delivery due at or before `tick`, advancing the
    /// clock as [`Engine::next_delivery`] does, or `None` when nothing
    /// is due. This is the per-tick drain step of the simulation loop,
    /// extracted as a *single* pop on purpose: handlers run between
    /// pops and their sends consume the loss/jitter RNG streams, so a
    /// collect-then-handle drain would reorder the draws and change
    /// fault outcomes bit-for-bit.
    pub fn next_delivery_due(&mut self, tick: Tick) -> Option<Delivery> {
        if self.next_time().is_some_and(|t| t <= tick) {
            // `next_time` just peeked a queue entry, so a delivery
            // exists; `None` on a phantom entry ends the caller's
            // drain loop panic-free (P1), as the inline loop did.
            self.next_delivery()
        } else {
            None
        }
    }

    /// Installs a node → shard map (region homes of the sharded world).
    /// With a map installed, [`Engine::crosses_shards`] lets callers
    /// account control messages that leave their sender's shard; an
    /// empty map (the default) keeps the accounting inert.
    pub fn set_shard_map(&mut self, shard_of: Vec<u32>) {
        self.shard_of = shard_of;
    }

    /// Whether `a` and `b` are homed in different shards of the
    /// installed map. Always `false` without a map or for out-of-range
    /// nodes.
    #[must_use]
    pub fn crosses_shards(&self, a: NodeId, b: NodeId) -> bool {
        match (self.shard_of.get(a.index()), self.shard_of.get(b.index())) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        }
    }

    /// Returns `true` if no deliveries are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending deliveries (time-series sampling).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Removes and returns every still-pending delivery in queue order
    /// **without** advancing the clock or touching any statistic — the
    /// round is over and these messages will never arrive. Used by the
    /// tracer to close their spans with an `expired` fate; behind a
    /// tracing check, so untraced runs never call it.
    pub fn drain_pending(&mut self) -> Vec<Delivery> {
        let mut expired = Vec::with_capacity(self.queue.len());
        while let Some(Reverse((_, slot))) = self.queue.pop() {
            if let Some(d) = self.payloads.get_mut(slot.index()).and_then(Option::take) {
                expired.push(d);
            }
        }
        expired
    }
}

/// Process-global delivered-message counter for one kind (snapshotted
/// into the trace by `obs::emit_metrics`).
fn delivered_counter(kind: MessageKind) -> &'static obs::Counter {
    match kind {
        MessageKind::Npi => obs::counter("dist.msg.npi"),
        MessageKind::Cc => obs::counter("dist.msg.cc"),
        MessageKind::Tight => obs::counter("dist.msg.tight"),
        MessageKind::Span => obs::counter("dist.msg.span"),
        MessageKind::Freeze => obs::counter("dist.msg.freeze"),
        MessageKind::NAdmin => obs::counter("dist.msg.nadmin"),
        MessageKind::BAdmin => obs::counter("dist.msg.badmin"),
        MessageKind::Ping => obs::counter("dist.msg.ping"),
        MessageKind::Pong => obs::counter("dist.msg.pong"),
    }
}

/// Process-global delivery-latency histogram (send tick → delivery
/// tick) for one kind; p50/p95/p99 appear in the metrics snapshot.
fn latency_histogram(kind: MessageKind) -> &'static obs::Histogram {
    match kind {
        MessageKind::Npi => obs::histogram("dist.latency.npi"),
        MessageKind::Cc => obs::histogram("dist.latency.cc"),
        MessageKind::Tight => obs::histogram("dist.latency.tight"),
        MessageKind::Span => obs::histogram("dist.latency.span"),
        MessageKind::Freeze => obs::histogram("dist.latency.freeze"),
        MessageKind::NAdmin => obs::histogram("dist.latency.nadmin"),
        MessageKind::BAdmin => obs::histogram("dist.latency.badmin"),
        MessageKind::Ping => obs::histogram("dist.latency.ping"),
        MessageKind::Pong => obs::histogram("dist.latency.pong"),
    }
}

/// The span name for a delivered message of `kind` in the causal trace.
pub(crate) fn message_span_name(kind: MessageKind) -> &'static str {
    match kind {
        MessageKind::Npi => "dist.msg.npi",
        MessageKind::Cc => "dist.msg.cc",
        MessageKind::Tight => "dist.msg.tight",
        MessageKind::Span => "dist.msg.span",
        MessageKind::Freeze => "dist.msg.freeze",
        MessageKind::NAdmin => "dist.msg.nadmin",
        MessageKind::BAdmin => "dist.msg.badmin",
        MessageKind::Ping => "dist.msg.ping",
        MessageKind::Pong => "dist.msg.pong",
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_core::ChunkId;

    fn msg() -> Message {
        Message::Tight {
            from: NodeId::new(0),
        }
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut e = Engine::new();
        e.send(NodeId::new(1), 3, msg());
        e.send(NodeId::new(2), 1, msg());
        let first = e.next_delivery().unwrap();
        assert_eq!(first.to, NodeId::new(2));
        assert_eq!(e.now(), 1);
        let second = e.next_delivery().unwrap();
        assert_eq!(second.to, NodeId::new(1));
        assert_eq!(e.now(), 3);
        assert!(e.is_idle());
    }

    #[test]
    fn same_tick_preserves_send_order() {
        let mut e = Engine::new();
        for i in 0..5 {
            e.send(NodeId::new(i), 2, msg());
        }
        for i in 0..5 {
            assert_eq!(e.next_delivery().unwrap().to, NodeId::new(i));
        }
    }

    #[test]
    fn next_delivery_due_matches_peek_and_pop() {
        let mut a = Engine::new();
        let mut b = Engine::new();
        for e in [&mut a, &mut b] {
            for i in 0..6 {
                e.send(NodeId::new(i), 1 + (i as u32 % 3), msg());
            }
        }
        for tick in 1..=4u64 {
            let mut drained = Vec::new();
            while let Some(d) = a.next_delivery_due(tick) {
                drained.push(d);
            }
            let mut inline = Vec::new();
            while b.next_time().is_some_and(|t| t <= tick) {
                let Some(d) = b.next_delivery() else { break };
                inline.push(d);
            }
            assert_eq!(drained, inline, "tick {tick} diverged");
            assert_eq!(a.now(), b.now());
        }
        assert!(a.is_idle() && b.is_idle());
    }

    #[test]
    fn shard_map_detects_boundary_crossings() {
        let mut e = Engine::new();
        // No map: accounting inert.
        assert!(!e.crosses_shards(NodeId::new(0), NodeId::new(1)));
        e.set_shard_map(vec![0, 0, 1]);
        assert!(!e.crosses_shards(NodeId::new(0), NodeId::new(1)));
        assert!(e.crosses_shards(NodeId::new(1), NodeId::new(2)));
        // Out-of-range nodes never count as crossings.
        assert!(!e.crosses_shards(NodeId::new(2), NodeId::new(9)));
    }

    #[test]
    fn zero_delay_is_clamped_to_one_tick() {
        let mut e = Engine::new();
        e.send(NodeId::new(0), 0, msg());
        assert_eq!(e.next_time(), Some(1));
    }

    #[test]
    fn stats_count_by_kind() {
        let mut e = Engine::new();
        e.send(NodeId::new(0), 1, msg());
        e.send(
            NodeId::new(0),
            1,
            Message::Npi {
                chunk: ChunkId::new(0),
            },
        );
        while e.next_delivery().is_some() {}
        assert_eq!(e.stats().get(MessageKind::Tight), 1);
        assert_eq!(e.stats().get(MessageKind::Npi), 1);
        assert_eq!(e.stats().total(), 2);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut e = Engine::with_loss(LossConfig {
            drop_probability: 1.0,
            seed: 1,
        });
        e.send(NodeId::new(0), 1, msg());
        assert!(e.is_idle());
        assert_eq!(e.stats().dropped, 1);
    }

    #[test]
    fn jitter_spreads_deliveries_deterministically() {
        let run = || {
            let mut e = Engine::with_faults(
                LossConfig::default(),
                JitterConfig {
                    max_extra_ticks: 5,
                    seed: 3,
                },
            );
            for i in 0..20 {
                e.send(NodeId::new(i), 1, msg());
            }
            let mut times = Vec::new();
            while let Some(d) = e.next_delivery() {
                times.push(d.at);
            }
            times
        };
        let a = run();
        assert_eq!(a, run());
        // Some deliveries were delayed beyond the base 1 tick.
        assert!(a.iter().any(|&t| t > 1));
        assert!(a.iter().all(|&t| t <= 6));
    }

    #[test]
    fn tagged_sends_carry_telemetry_and_duplicates_reconcile() {
        let mut e = Engine::new();
        let ctx = obs::TraceContext {
            trace: 5,
            span: 2,
            parent: 1,
        };
        assert!(e.send_tagged(NodeId::new(1), 2, msg(), 0, false, ctx));
        assert!(e.send_tagged(NodeId::new(1), 2, msg(), 0, true, ctx));
        assert_eq!(e.pending(), 2);
        let d = e.next_delivery().unwrap();
        assert_eq!(d.ctx, ctx);
        assert!(!d.dup);
        assert_eq!(d.sent, 0);
        let d2 = e.next_delivery().unwrap();
        assert!(d2.dup);
        assert_eq!(e.stats().duplicate_delivered, 1);
        assert_eq!(e.stats().unique_delivered(), 1);
    }

    #[test]
    fn drain_pending_returns_undelivered_messages_untouched() {
        let mut e = Engine::new();
        e.send(NodeId::new(1), 1, msg());
        e.send(NodeId::new(2), 5, msg());
        let _ = e.next_delivery().unwrap();
        let stats_before = *e.stats();
        let left = e.drain_pending();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].to, NodeId::new(2));
        assert!(e.is_idle());
        assert_eq!(e.stats(), &stats_before);
        assert_eq!(e.now(), 1, "drain must not advance the clock");
    }

    #[test]
    fn partial_loss_is_reproducible() {
        let run = |seed| {
            let mut e = Engine::with_loss(LossConfig {
                drop_probability: 0.5,
                seed,
            });
            for i in 0..100 {
                e.send(NodeId::new(i % 4), 1, msg());
            }
            e.stats().dropped
        };
        assert_eq!(run(7), run(7));
        assert!(run(7) > 10 && run(7) < 90);
    }
}
