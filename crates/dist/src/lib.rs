//! The distributed fair-caching algorithm (Algorithm 2) on a
//! discrete-event message simulator.
//!
//! Devices in a pervasive edge environment do not know the global
//! topology, so §IV-C of the paper distributes the dual ascent: nodes
//! exchange contention information within a `k`-hop range, raise
//! connection/resource/relay bids (`α`, `β`, `γ`), and elect caching
//! (ADMIN) nodes through the TIGHT / SPAN / FREEZE / NADMIN / BADMIN
//! message protocol of Table II.
//!
//! * [`engine`] — the discrete-event core: virtual clock, event queue,
//!   hop-delayed delivery, optional message loss.
//! * [`protocol`] — the Table II message types (plus the lease-probe
//!   PING/PONG pair) and per-type statistics.
//! * [`view`] — each node's k-hop local view (the result of the CC
//!   contention-collection exchange).
//! * [`chaos`] — the deterministic chaos harness: a seeded
//!   [`chaos::FaultPlan`] of drops, duplication, reordering,
//!   corruption, partition windows, flapping links, grey nodes, and
//!   scheduled deaths.
//! * [`sim`] — the per-chunk protocol state machine, with opt-in
//!   retry/backoff, FREEZE leases, and election timeouts
//!   ([`sim::LivenessConfig`]) for partition tolerance.
//! * [`membership`] — SWIM-style failure detection (ping / ping-req /
//!   suspect / confirm) replacing scripted death oracles with a
//!   deterministic detector over the same fault transport.
//! * [`replica`] — versioned chunk replicas: last-writer-wins updates,
//!   typed anti-entropy / read-repair exchange, and bounded
//!   node-startup recovery.
//! * [`runner`] — [`DistributedPlanner`], a drop-in
//!   [`peercache_core::planner::CachePlanner`] that runs the protocol
//!   chunk by chunk and reports message counts.
//!
//! # Example
//!
//! ```
//! use peercache_core::{planner::CachePlanner, workload::paper_grid};
//! use peercache_dist::DistributedPlanner;
//!
//! let mut net = paper_grid(4)?;
//! let planner = DistributedPlanner::default(); // k = 2 hops
//! let placement = planner.plan(&mut net, 3)?;
//! assert_eq!(placement.chunks().len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod error;
pub mod membership;
pub mod protocol;
pub mod replica;
pub mod runner;
pub mod sim;
pub mod view;

pub use chaos::{FaultPlan, FaultStats};
pub use error::ProtocolError;
pub use membership::{MemberState, MembershipEvent, MembershipEventKind, Swim, SwimConfig};
pub use replica::{ReplicaSim, SyncMessage, Version, WriteOutcome};
pub use runner::{DistributedConfig, DistributedPlanner, RunReport};
pub use sim::LivenessConfig;
