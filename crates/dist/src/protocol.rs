//! Protocol messages (Table II) and per-type statistics.

use peercache_core::ChunkId;
use peercache_graph::NodeId;

/// A control message of the distributed algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// "There is a new data chunk to be cached" — broadcast by the
    /// producer at the start of each chunk's round.
    Npi {
        /// The chunk being announced.
        chunk: ChunkId,
    },
    /// Contention-collection request (local, k hops).
    CollectContention {
        /// Requesting node.
        from: NodeId,
    },
    /// Reply to [`Message::CollectContention`]: the sender's degree and
    /// current caching load, enough to evaluate `w_k (1 + S(k))`.
    ContentionReply {
        /// Replying node.
        from: NodeId,
        /// Its degree (`w_k`).
        degree: usize,
        /// Its cached-chunk count (`S(k)`).
        load: usize,
    },
    /// "Can I get data from you?" — sent when the connection bid covers
    /// the estimated contention cost (local, k hops).
    Tight {
        /// Bidding node.
        from: NodeId,
    },
    /// "Can you fetch data for me from other nodes?" — sent when the
    /// relay bid covers the contention cost (local, k hops).
    Span {
        /// Bidding node.
        from: NodeId,
    },
    /// Freeze the receiver: it is served by `provider`.
    Freeze {
        /// The node that will provide the chunk.
        provider: NodeId,
    },
    /// "I am now an ADMIN" — sent to the nodes whose TIGHT/SPAN requests
    /// the new admin accepted (local, k hops).
    NAdmin {
        /// The new admin (caching) node.
        admin: NodeId,
    },
    /// "I am now an ADMIN" — network-wide announcement for nodes with
    /// adequate resource bids.
    BAdmin {
        /// The new admin (caching) node.
        admin: NodeId,
    },
}

impl Message {
    /// The statistics bucket this message belongs to.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Npi { .. } => MessageKind::Npi,
            Message::CollectContention { .. } => MessageKind::Cc,
            Message::ContentionReply { .. } => MessageKind::Cc,
            Message::Tight { .. } => MessageKind::Tight,
            Message::Span { .. } => MessageKind::Span,
            Message::Freeze { .. } => MessageKind::Freeze,
            Message::NAdmin { .. } => MessageKind::NAdmin,
            Message::BAdmin { .. } => MessageKind::BAdmin,
        }
    }
}

/// Message categories of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// New-packet-info broadcasts.
    Npi,
    /// Contention collection (requests and replies).
    Cc,
    /// TIGHT requests.
    Tight,
    /// SPAN requests.
    Span,
    /// FREEZE responses.
    Freeze,
    /// Local admin announcements.
    NAdmin,
    /// Broadcast admin announcements.
    BAdmin,
}

impl MessageKind {
    /// All categories, in Table II order.
    pub const ALL: [MessageKind; 7] = [
        MessageKind::Npi,
        MessageKind::Cc,
        MessageKind::Tight,
        MessageKind::Span,
        MessageKind::Freeze,
        MessageKind::NAdmin,
        MessageKind::BAdmin,
    ];
}

/// Per-type message counters (the §IV-D complexity analysis in numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// NPI broadcasts delivered.
    pub npi: u64,
    /// CC requests + replies delivered.
    pub cc: u64,
    /// TIGHT requests delivered.
    pub tight: u64,
    /// SPAN requests delivered.
    pub span: u64,
    /// FREEZE responses delivered.
    pub freeze: u64,
    /// NADMIN announcements delivered.
    pub nadmin: u64,
    /// BADMIN announcements delivered.
    pub badmin: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
}

impl MessageStats {
    /// Records one delivered message.
    pub fn record(&mut self, kind: MessageKind) {
        match kind {
            MessageKind::Npi => self.npi += 1,
            MessageKind::Cc => self.cc += 1,
            MessageKind::Tight => self.tight += 1,
            MessageKind::Span => self.span += 1,
            MessageKind::Freeze => self.freeze += 1,
            MessageKind::NAdmin => self.nadmin += 1,
            MessageKind::BAdmin => self.badmin += 1,
        }
    }

    /// Total delivered messages across all categories.
    pub fn total(&self) -> u64 {
        self.npi + self.cc + self.tight + self.span + self.freeze + self.nadmin + self.badmin
    }

    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        self.npi += other.npi;
        self.cc += other.cc;
        self.tight += other.tight;
        self.span += other.span;
        self.freeze += other.freeze;
        self.nadmin += other.nadmin;
        self.badmin += other.badmin;
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let samples = [
            Message::Npi { chunk: ChunkId::new(0) },
            Message::CollectContention { from: NodeId::new(1) },
            Message::ContentionReply { from: NodeId::new(1), degree: 3, load: 2 },
            Message::Tight { from: NodeId::new(1) },
            Message::Span { from: NodeId::new(1) },
            Message::Freeze { provider: NodeId::new(2) },
            Message::NAdmin { admin: NodeId::new(2) },
            Message::BAdmin { admin: NodeId::new(2) },
        ];
        let kinds: Vec<MessageKind> = samples.iter().map(Message::kind).collect();
        // CC request and reply share a bucket; everything else distinct.
        assert_eq!(kinds[1], kinds[2]);
        assert_eq!(kinds.len(), 8);
    }

    #[test]
    fn stats_record_and_total() {
        let mut stats = MessageStats::default();
        stats.record(MessageKind::Tight);
        stats.record(MessageKind::Tight);
        stats.record(MessageKind::Freeze);
        assert_eq!(stats.tight, 2);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MessageStats {
            npi: 1,
            dropped: 2,
            ..Default::default()
        };
        let b = MessageStats {
            npi: 3,
            span: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.npi, 4);
        assert_eq!(a.span, 4);
        assert_eq!(a.dropped, 2);
    }
}
