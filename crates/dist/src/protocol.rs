//! Protocol messages (Table II) and per-type statistics.

use peercache_core::ChunkId;
use peercache_graph::NodeId;

/// A control message of the distributed algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// "There is a new data chunk to be cached" — broadcast by the
    /// producer at the start of each chunk's round.
    Npi {
        /// The chunk being announced.
        chunk: ChunkId,
    },
    /// Contention-collection request (local, k hops).
    CollectContention {
        /// Requesting node.
        from: NodeId,
    },
    /// Reply to [`Message::CollectContention`]: the sender's degree and
    /// current caching load, enough to evaluate `w_k (1 + S(k))`.
    ContentionReply {
        /// Replying node.
        from: NodeId,
        /// Its degree (`w_k`).
        degree: usize,
        /// Its cached-chunk count (`S(k)`).
        load: usize,
    },
    /// "Can I get data from you?" — sent when the connection bid covers
    /// the estimated contention cost (local, k hops).
    Tight {
        /// Bidding node.
        from: NodeId,
    },
    /// "Can you fetch data for me from other nodes?" — sent when the
    /// relay bid covers the contention cost (local, k hops).
    Span {
        /// Bidding node.
        from: NodeId,
    },
    /// Freeze the receiver: it is served by `provider`.
    Freeze {
        /// The node that will provide the chunk.
        provider: NodeId,
    },
    /// "I am now an ADMIN" — sent to the nodes whose TIGHT/SPAN requests
    /// the new admin accepted (local, k hops).
    NAdmin {
        /// The new admin (caching) node.
        admin: NodeId,
    },
    /// "I am now an ADMIN" — network-wide announcement for nodes with
    /// adequate resource bids.
    BAdmin {
        /// The new admin (caching) node.
        admin: NodeId,
    },
    /// Lease probe: a frozen client checks its provider is still alive
    /// and reachable (liveness extension; not in Table II).
    Ping {
        /// The probing client.
        from: NodeId,
    },
    /// Lease renewal: the provider's answer to [`Message::Ping`].
    Pong {
        /// The provider renewing the lease.
        provider: NodeId,
    },
}

impl Message {
    /// The statistics bucket this message belongs to.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Npi { .. } => MessageKind::Npi,
            Message::CollectContention { .. } => MessageKind::Cc,
            Message::ContentionReply { .. } => MessageKind::Cc,
            Message::Tight { .. } => MessageKind::Tight,
            Message::Span { .. } => MessageKind::Span,
            Message::Freeze { .. } => MessageKind::Freeze,
            Message::NAdmin { .. } => MessageKind::NAdmin,
            Message::BAdmin { .. } => MessageKind::BAdmin,
            Message::Ping { .. } => MessageKind::Ping,
            Message::Pong { .. } => MessageKind::Pong,
        }
    }
}

/// Message categories: Table II plus the lease-probe pair of the
/// liveness extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// New-packet-info broadcasts.
    Npi,
    /// Contention collection (requests and replies).
    Cc,
    /// TIGHT requests.
    Tight,
    /// SPAN requests.
    Span,
    /// FREEZE responses.
    Freeze,
    /// Local admin announcements.
    NAdmin,
    /// Broadcast admin announcements.
    BAdmin,
    /// Lease probes from frozen clients.
    Ping,
    /// Lease renewals from providers.
    Pong,
}

impl MessageKind {
    /// All categories — Table II order first, then the lease pair.
    pub const ALL: [MessageKind; 9] = [
        MessageKind::Npi,
        MessageKind::Cc,
        MessageKind::Tight,
        MessageKind::Span,
        MessageKind::Freeze,
        MessageKind::NAdmin,
        MessageKind::BAdmin,
        MessageKind::Ping,
        MessageKind::Pong,
    ];

    /// Position of this kind in [`MessageKind::ALL`] (and in
    /// [`MessageStats`]' backing array).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The wire name of this kind, as used in Table II and the
    /// telemetry output.
    pub const fn label(self) -> &'static str {
        match self {
            MessageKind::Npi => "NPI",
            MessageKind::Cc => "CC",
            MessageKind::Tight => "TIGHT",
            MessageKind::Span => "SPAN",
            MessageKind::Freeze => "FREEZE",
            MessageKind::NAdmin => "NADMIN",
            MessageKind::BAdmin => "BADMIN",
            MessageKind::Ping => "PING",
            MessageKind::Pong => "PONG",
        }
    }
}

/// Per-type message counters (the §IV-D complexity analysis in numbers).
///
/// Delivered counts are stored per [`MessageKind`] and indexable with
/// `stats[kind]`; `dropped` counts messages lost to fault injection and
/// is deliberately outside [`MessageStats::total`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    delivered: [u64; MessageKind::ALL.len()],
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Deliveries that were chaos-injected duplicates of an already
    /// delivered message. Duplicates also count in the per-kind
    /// `delivered` buckets (the receiver really did process them), so
    /// `total() - duplicate_delivered` is the number of *unique*
    /// messages that arrived — the figure trace-completeness checks
    /// reconcile against sends.
    pub duplicate_delivered: u64,
}

impl MessageStats {
    /// Records one delivered message.
    pub fn record(&mut self, kind: MessageKind) {
        self.add(kind, 1);
    }

    /// Records one delivered chaos-duplicate (also counted in the
    /// per-kind bucket by the caller's [`MessageStats::record`]).
    pub fn record_duplicate(&mut self) {
        self.duplicate_delivered += 1;
    }

    /// Delivered messages excluding chaos duplicates.
    pub fn unique_delivered(&self) -> u64 {
        self.total().saturating_sub(self.duplicate_delivered)
    }

    /// Records `n` delivered messages of one kind.
    // `delivered` has one slot per `MessageKind`; `kind.index()` is a
    // variant ordinal, in bounds by construction.
    #[allow(clippy::indexing_slicing)]
    pub fn add(&mut self, kind: MessageKind, n: u64) {
        self.delivered[kind.index()] += n;
    }

    /// Delivered count for one kind.
    // Same bound proof as `add`.
    #[allow(clippy::indexing_slicing)]
    pub fn get(&self, kind: MessageKind) -> u64 {
        self.delivered[kind.index()]
    }

    /// Total delivered messages across all categories (drops excluded).
    pub fn total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// `(kind, delivered)` pairs in Table II order.
    pub fn per_kind(&self) -> impl Iterator<Item = (MessageKind, u64)> + '_ {
        MessageKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }

    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        for (slot, v) in self.delivered.iter_mut().zip(other.delivered) {
            *slot += v;
        }
        self.dropped += other.dropped;
        self.duplicate_delivered += other.duplicate_delivered;
    }
}

impl std::ops::Index<MessageKind> for MessageStats {
    type Output = u64;

    // Same bound proof as `MessageStats::add`.
    #[allow(clippy::indexing_slicing)]
    fn index(&self, kind: MessageKind) -> &u64 {
        &self.delivered[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let samples = [
            Message::Npi {
                chunk: ChunkId::new(0),
            },
            Message::CollectContention {
                from: NodeId::new(1),
            },
            Message::ContentionReply {
                from: NodeId::new(1),
                degree: 3,
                load: 2,
            },
            Message::Tight {
                from: NodeId::new(1),
            },
            Message::Span {
                from: NodeId::new(1),
            },
            Message::Freeze {
                provider: NodeId::new(2),
            },
            Message::NAdmin {
                admin: NodeId::new(2),
            },
            Message::BAdmin {
                admin: NodeId::new(2),
            },
            Message::Ping {
                from: NodeId::new(1),
            },
            Message::Pong {
                provider: NodeId::new(2),
            },
        ];
        let kinds: Vec<MessageKind> = samples.iter().map(Message::kind).collect();
        // CC request and reply share a bucket; everything else distinct.
        assert_eq!(kinds[1], kinds[2]);
        assert_eq!(kinds.len(), 10);
    }

    #[test]
    fn stats_record_and_total() {
        let mut stats = MessageStats::default();
        stats.record(MessageKind::Tight);
        stats.record(MessageKind::Tight);
        stats.record(MessageKind::Freeze);
        assert_eq!(stats[MessageKind::Tight], 2);
        assert_eq!(stats.get(MessageKind::Freeze), 1);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MessageStats::default();
        a.record(MessageKind::Npi);
        a.dropped = 2;
        a.record_duplicate();
        let mut b = MessageStats::default();
        b.add(MessageKind::Npi, 3);
        b.add(MessageKind::Span, 4);
        b.duplicate_delivered = 2;
        a.merge(&b);
        assert_eq!(a[MessageKind::Npi], 4);
        assert_eq!(a[MessageKind::Span], 4);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.duplicate_delivered, 3);
    }

    /// A chaos duplicate counts in its kind bucket (it really arrived)
    /// *and* in `duplicate_delivered`, so unique deliveries are
    /// recoverable as `total() - duplicate_delivered`.
    #[test]
    fn duplicates_reconcile_against_unique_deliveries() {
        let mut stats = MessageStats::default();
        stats.record(MessageKind::Tight);
        stats.record(MessageKind::Tight); // chaos copy of the same send
        stats.record_duplicate();
        assert_eq!(stats[MessageKind::Tight], 2);
        assert_eq!(stats.total(), 2);
        assert_eq!(stats.duplicate_delivered, 1);
        assert_eq!(stats.unique_delivered(), 1);
    }

    #[test]
    fn indices_follow_table_ii_order() {
        for (i, kind) in MessageKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let labels: Vec<&str> = MessageKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            ["NPI", "CC", "TIGHT", "SPAN", "FREEZE", "NADMIN", "BADMIN", "PING", "PONG"]
        );
    }

    /// `total()` must equal the sum over every kind, and `dropped` must
    /// stay outside it: a dropped message was never delivered.
    #[test]
    fn total_is_sum_of_kinds_and_excludes_dropped() {
        let mut stats = MessageStats::default();
        for (i, kind) in MessageKind::ALL.iter().enumerate() {
            stats.add(*kind, (i + 1) as u64);
        }
        stats.dropped = 1000;
        let by_kind: u64 = stats.per_kind().map(|(_, n)| n).sum();
        assert_eq!(stats.total(), by_kind);
        assert_eq!(stats.total(), (1..=9).sum::<u64>());
    }
}
