//! Versioned chunk replicas: last-writer-wins updates, anti-entropy,
//! read-repair, and bounded node-startup recovery.
//!
//! The planners decide *where* R copies of a chunk live; this module
//! simulates *what* those copies hold once producers keep writing new
//! versions while nodes die, partitions form, and links flap. Each
//! update carries a [`Version`] — a logical timestamp plus the writer
//! id — and every exchange resolves conflicts by last-writer-wins
//! (higher timestamp wins; equal timestamps break toward the lower
//! writer id, so any two replicas order any two versions identically).
//!
//! Three repair channels keep replicas converging:
//!
//! * **Write-all acknowledgement** ([`ReplicaSim::write`]): a write is
//!   *acked* only when every target replica stored it. The durability
//!   oracle rests on this: an acked version exists on all R copies, so
//!   up to R−1 simultaneous deaths cannot erase it.
//! * **Anti-entropy** ([`ReplicaSim::anti_entropy_round`]): live hosts
//!   of a chunk gossip digests around their ring and pull any newer
//!   version — the typed [`SyncMessage::Digest`]/[`SyncMessage::Repair`]
//!   exchange. Partitioned pairs skip the exchange and catch up after
//!   the heal.
//! * **Read-repair** ([`ReplicaSim::read`]): a read returns the newest
//!   reachable version and opportunistically pushes it to stale
//!   reachable holders.
//!
//! [`ReplicaSim::revive`] models fast node startup: a rejoining node
//! refills each chunk it hosts from the nearest live replica, and the
//! byte counter proves the traffic is O(chunks hosted) — not O(total
//! chunks) — the recovery bound the chaos oracle asserts.
//!
//! Everything is deterministic: iteration orders are ascending, the
//! only state is in `BTreeMap`s, and no randomness is drawn.

use std::collections::BTreeMap;

use peercache_core::ChunkId;
use peercache_graph::NodeId;
use peercache_obs as obs;

use crate::engine::Tick;

/// A logical version: Lamport-style timestamp plus writer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// Logical timestamp (monotone per [`ReplicaSim`]).
    pub ts: u64,
    /// The writing node, the last-writer-wins tie-breaker.
    pub writer: NodeId,
}

impl Version {
    /// Last-writer-wins order: higher timestamp wins, ties break toward
    /// the **lower** writer id (a total order, so replicas agree).
    pub fn supersedes(&self, other: &Version) -> bool {
        self.ts > other.ts || (self.ts == other.ts && self.writer < other.writer)
    }
}

/// The typed anti-entropy / read-repair exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMessage {
    /// "Here is the newest version I hold for this chunk."
    Digest {
        /// The advertising node.
        from: NodeId,
        /// The chunk advertised.
        chunk: ChunkId,
        /// Its newest local version.
        version: Version,
    },
    /// "Overwrite your copy with this newer version."
    Repair {
        /// The node pushing the repair.
        from: NodeId,
        /// The chunk repaired.
        chunk: ChunkId,
        /// The superseding version.
        version: Version,
    },
}

/// Outcome of one replicated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The version assigned to the write.
    pub version: Version,
    /// How many targets stored it.
    pub stored: usize,
    /// Whether every target stored it (write-all acknowledgement).
    pub acked: bool,
}

/// A deterministic replica-state simulator over `n` nodes.
///
/// Reachability is supplied per call as a closure `(from, to) -> bool`
/// so the caller can wire it to the chaos harness's partition/flap
/// state at the current tick.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSim {
    /// Per-node store: chunk → newest version held.
    stores: Vec<BTreeMap<ChunkId, Version>>,
    /// Liveness flags (dead nodes lose their store).
    alive: Vec<bool>,
    /// chunk → host set (sorted): where the R copies are supposed to
    /// live, maintained by [`ReplicaSim::write`] target sets.
    hosts: BTreeMap<ChunkId, Vec<NodeId>>,
    /// chunk → newest *acknowledged* version (the durability ledger).
    acked: BTreeMap<ChunkId, Version>,
    /// Logical clock for version timestamps.
    clock: u64,
    /// Chunks copied by [`ReplicaSim::revive`] calls (1 unit ≙ 1 chunk
    /// payload), the recovery-bound oracle's measure.
    pub recovery_bytes: u64,
    /// Typed message trace of the most recent exchange round.
    last_exchange: Vec<SyncMessage>,
}

impl ReplicaSim {
    /// A simulator over nodes `0..n`, all alive with empty stores.
    pub fn new(n: usize) -> Self {
        ReplicaSim {
            stores: vec![BTreeMap::new(); n],
            alive: vec![true; n],
            hosts: BTreeMap::new(),
            acked: BTreeMap::new(),
            clock: 0,
            recovery_bytes: 0,
            last_exchange: Vec::new(),
        }
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// The version a node holds for a chunk, if any.
    pub fn held(&self, node: NodeId, chunk: ChunkId) -> Option<Version> {
        self.stores.get(node.index())?.get(&chunk).copied()
    }

    /// The sorted host set of a chunk (empty if never written).
    pub fn hosts(&self, chunk: ChunkId) -> &[NodeId] {
        self.hosts.get(&chunk).map_or(&[], Vec::as_slice)
    }

    /// The newest acknowledged version per chunk (the durability
    /// ledger the oracle checks against).
    pub fn acked_versions(&self) -> &BTreeMap<ChunkId, Version> {
        &self.acked
    }

    /// The typed messages of the most recent anti-entropy or
    /// read-repair round, in emission order.
    pub fn last_exchange(&self) -> &[SyncMessage] {
        &self.last_exchange
    }

    /// Writes a new version of `chunk` to `targets` (the chunk's R
    /// holders). Only reachable live targets store it; the write is
    /// acked iff **all** targets stored it.
    pub fn write(
        &mut self,
        chunk: ChunkId,
        writer: NodeId,
        targets: &[NodeId],
        reach: impl Fn(NodeId, NodeId) -> bool,
    ) -> WriteOutcome {
        self.clock = self.clock.saturating_add(1);
        let version = Version {
            ts: self.clock,
            writer,
        };
        let mut hosts: Vec<NodeId> = targets.to_vec();
        hosts.sort_unstable();
        hosts.dedup();
        let mut stored = 0;
        for &t in &hosts {
            if self.is_alive(t) && reach(writer, t) {
                self.store(t, chunk, version);
                stored += 1;
            }
        }
        let acked = !hosts.is_empty() && stored == hosts.len();
        if acked {
            self.hosts.insert(chunk, hosts);
            self.acked.insert(chunk, version);
        } else {
            self.hosts.entry(chunk).or_insert(hosts);
        }
        WriteOutcome {
            version,
            stored,
            acked,
        }
    }

    /// Kills a node: it stops participating and its store is lost.
    pub fn kill(&mut self, node: NodeId) {
        if let Some(flag) = self.alive.get_mut(node.index()) {
            *flag = false;
        }
        if let Some(store) = self.stores.get_mut(node.index()) {
            store.clear();
        }
    }

    /// Revives a node with an empty store and refills every chunk it
    /// hosts from the nearest live replica (`distance` orders donors;
    /// ties break to the lower donor id). Returns the number of chunks
    /// recovered; `recovery_bytes` grows by the same amount — i.e. the
    /// traffic is bounded by the number of chunks the node hosts.
    pub fn revive(
        &mut self,
        node: NodeId,
        reach: impl Fn(NodeId, NodeId) -> bool,
        distance: impl Fn(NodeId, NodeId) -> u64,
    ) -> u64 {
        if let Some(flag) = self.alive.get_mut(node.index()) {
            *flag = true;
        }
        if let Some(store) = self.stores.get_mut(node.index()) {
            store.clear();
        }
        let hosted: Vec<ChunkId> = self
            .hosts
            .iter()
            .filter(|(_, hs)| hs.binary_search(&node).is_ok())
            .map(|(&c, _)| c)
            .collect();
        let mut recovered = 0;
        for chunk in hosted {
            // Nearest live holder of the chunk (not the reviving node).
            let mut donor: Option<(u64, NodeId, Version)> = None;
            for &h in self.hosts.get(&chunk).map_or(&[][..], Vec::as_slice) {
                if h == node || !self.is_alive(h) || !reach(h, node) {
                    continue;
                }
                let Some(v) = self.held(h, chunk) else {
                    continue;
                };
                let d = distance(h, node);
                let better = match donor {
                    None => true,
                    Some((bd, bh, _)) => d < bd || (d == bd && h < bh),
                };
                if better {
                    donor = Some((d, h, v));
                }
            }
            if let Some((_, _, v)) = donor {
                self.store(node, chunk, v);
                recovered += 1;
            }
        }
        self.recovery_bytes = self.recovery_bytes.saturating_add(recovered);
        if obs::enabled() {
            obs::counter("repair.recovery_bytes").add(recovered);
        }
        recovered
    }

    /// One anti-entropy round: for every chunk, its live hosts gossip
    /// digests around the (sorted) host ring; a host holding a newer
    /// version pushes a repair to its ring successor when the pair is
    /// mutually reachable. Returns the number of repairs applied.
    pub fn anti_entropy_round(&mut self, reach: impl Fn(NodeId, NodeId) -> bool) -> usize {
        self.last_exchange.clear();
        let chunks: Vec<ChunkId> = self.hosts.keys().copied().collect();
        let mut repairs = 0;
        for chunk in chunks {
            let ring: Vec<NodeId> = self
                .hosts
                .get(&chunk)
                .map_or(&[][..], Vec::as_slice)
                .iter()
                .copied()
                .filter(|&h| self.is_alive(h))
                .collect();
            if ring.len() < 2 {
                continue;
            }
            for (i, &a) in ring.iter().enumerate() {
                let &b = ring.get((i + 1) % ring.len()).unwrap_or(&a);
                if a == b || !reach(a, b) || !reach(b, a) {
                    continue;
                }
                let va = self.held(a, chunk);
                let vb = self.held(b, chunk);
                if let Some(v) = va {
                    self.last_exchange.push(SyncMessage::Digest {
                        from: a,
                        chunk,
                        version: v,
                    });
                }
                match (va, vb) {
                    (Some(va), Some(vb)) if va.supersedes(&vb) => {
                        self.last_exchange.push(SyncMessage::Repair {
                            from: a,
                            chunk,
                            version: va,
                        });
                        self.store(b, chunk, va);
                        repairs += 1;
                    }
                    (Some(va), None) => {
                        self.last_exchange.push(SyncMessage::Repair {
                            from: a,
                            chunk,
                            version: va,
                        });
                        self.store(b, chunk, va);
                        repairs += 1;
                    }
                    (None, Some(vb)) | (Some(_), Some(vb)) => {
                        // Pull direction: b answers with its (newer or
                        // equal) digest; a adopts if strictly newer.
                        self.last_exchange.push(SyncMessage::Digest {
                            from: b,
                            chunk,
                            version: vb,
                        });
                        let stale = self.held(a, chunk).is_none_or(|va| vb.supersedes(&va));
                        if stale {
                            self.last_exchange.push(SyncMessage::Repair {
                                from: b,
                                chunk,
                                version: vb,
                            });
                            self.store(a, chunk, vb);
                            repairs += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        if obs::enabled() && repairs > 0 {
            obs::counter("dist.replica.anti_entropy").add(repairs as u64);
        }
        repairs
    }

    /// Reads `chunk` from `client`'s perspective: returns the newest
    /// version among reachable live holders and read-repairs stale
    /// reachable holders to it.
    pub fn read(
        &mut self,
        chunk: ChunkId,
        client: NodeId,
        reach: impl Fn(NodeId, NodeId) -> bool,
    ) -> Option<Version> {
        self.last_exchange.clear();
        let holders: Vec<NodeId> = self
            .hosts
            .get(&chunk)
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .copied()
            .filter(|&h| self.is_alive(h) && reach(client, h) && reach(h, client))
            .collect();
        let mut newest: Option<Version> = None;
        for &h in &holders {
            if let Some(v) = self.held(h, chunk) {
                self.last_exchange.push(SyncMessage::Digest {
                    from: h,
                    chunk,
                    version: v,
                });
                if newest.is_none_or(|n| v.supersedes(&n)) {
                    newest = Some(v);
                }
            }
        }
        let winner = newest?;
        let mut repaired = 0;
        for &h in &holders {
            let stale = self.held(h, chunk).is_none_or(|v| winner.supersedes(&v));
            if stale {
                self.last_exchange.push(SyncMessage::Repair {
                    from: client,
                    chunk,
                    version: winner,
                });
                self.store(h, chunk, winner);
                repaired += 1;
            }
        }
        if obs::enabled() && repaired > 0 {
            obs::counter("dist.replica.read_repair").add(repaired);
        }
        Some(winner)
    }

    /// Whether every chunk's live holders agree on a single version.
    pub fn converged(&self) -> bool {
        self.hosts.iter().all(|(&chunk, hs)| {
            let versions: Vec<Version> = hs
                .iter()
                .filter(|&&h| self.is_alive(h))
                .filter_map(|&h| self.held(h, chunk))
                .collect();
            versions.windows(2).all(|w| match w {
                [a, b] => a == b,
                _ => true,
            })
        })
    }

    /// Acked writes with **no** surviving copy: chunks whose newest
    /// acknowledged version is newer than everything any live node
    /// holds. Empty ⇔ the durability oracle passes.
    pub fn lost_acked_writes(&self) -> Vec<(ChunkId, Version)> {
        self.acked
            .iter()
            .filter(|&(&chunk, acked)| {
                !self.stores.iter().enumerate().any(|(i, store)| {
                    self.alive.get(i).copied().unwrap_or(false)
                        && store
                            .get(&chunk)
                            .is_some_and(|held| !acked.supersedes(held))
                })
            })
            .map(|(&c, &v)| (c, v))
            .collect()
    }

    /// A deterministic digest of every live store, for replay equality
    /// checks (`0` only for an all-empty simulator).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (i, store) in self.stores.iter().enumerate() {
            if !self.alive.get(i).copied().unwrap_or(false) {
                continue;
            }
            mix(i as u64);
            for (c, v) in store {
                mix(c.index() as u64);
                mix(v.ts);
                mix(v.writer.index() as u64);
            }
        }
        h
    }

    /// The logical clock — handy for callers aligning [`Tick`]-based
    /// schedules with version timestamps.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock to at least `tick` (used when writes
    /// are scheduled by simulator ticks rather than arrival order).
    pub fn witness_tick(&mut self, tick: Tick) {
        if tick > self.clock {
            self.clock = tick;
        }
    }

    fn store(&mut self, node: NodeId, chunk: ChunkId, version: Version) {
        if let Some(store) = self.stores.get_mut(node.index()) {
            let newer = store
                .get(&chunk)
                .is_none_or(|held| version.supersedes(held));
            if newer {
                store.insert(chunk, version);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn c(i: usize) -> ChunkId {
        ChunkId::new(i)
    }

    fn all_reach(_: NodeId, _: NodeId) -> bool {
        true
    }

    fn hop(a: NodeId, b: NodeId) -> u64 {
        a.index().abs_diff(b.index()) as u64
    }

    #[test]
    fn lww_orders_totally_with_lower_writer_winning_ties() {
        let a = Version {
            ts: 5,
            writer: n(2),
        };
        let b = Version {
            ts: 5,
            writer: n(7),
        };
        let newer = Version {
            ts: 6,
            writer: n(9),
        };
        assert!(a.supersedes(&b));
        assert!(!b.supersedes(&a));
        assert!(newer.supersedes(&a) && newer.supersedes(&b));
        assert!(!a.supersedes(&a), "a version never supersedes itself");
    }

    #[test]
    fn write_all_ack_requires_every_target() {
        let mut sim = ReplicaSim::new(5);
        let out = sim.write(c(0), n(0), &[n(1), n(2), n(3)], all_reach);
        assert!(out.acked);
        assert_eq!(out.stored, 3);
        assert_eq!(sim.hosts(c(0)), &[n(1), n(2), n(3)]);
        // One target unreachable -> stored on two, NOT acked.
        let out2 = sim.write(c(1), n(0), &[n(1), n(2), n(3)], |_, to| to != n(3));
        assert!(!out2.acked);
        assert_eq!(out2.stored, 2);
        assert!(sim.acked_versions().get(&c(1)).is_none());
    }

    #[test]
    fn acked_writes_survive_r_minus_one_deaths() {
        let mut sim = ReplicaSim::new(6);
        sim.write(c(0), n(0), &[n(1), n(2), n(3)], all_reach);
        sim.write(c(1), n(0), &[n(2), n(3), n(4)], all_reach);
        // Kill 2 of the 3 holders of each chunk (R - 1 = 2).
        sim.kill(n(2));
        sim.kill(n(3));
        assert!(sim.lost_acked_writes().is_empty());
        // Killing the last holder of chunk 0 loses it.
        sim.kill(n(1));
        let lost = sim.lost_acked_writes();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].0, c(0));
    }

    #[test]
    fn anti_entropy_converges_divergent_replicas() {
        let mut sim = ReplicaSim::new(4);
        sim.write(c(0), n(0), &[n(1), n(2), n(3)], all_reach);
        // A second write reaches only n(1): divergence.
        let out = sim.write(c(0), n(0), &[n(1), n(2), n(3)], |_, to| to == n(1));
        assert!(!out.acked);
        assert!(!sim.converged());
        let repairs = sim.anti_entropy_round(all_reach);
        assert!(repairs > 0);
        assert!(sim.converged());
        for h in [n(1), n(2), n(3)] {
            assert_eq!(sim.held(h, c(0)), Some(out.version));
        }
        // The exchange is typed: digests precede the repairs they cause.
        assert!(sim
            .last_exchange()
            .iter()
            .any(|m| matches!(m, SyncMessage::Repair { .. })));
        // Idempotent once converged.
        assert_eq!(sim.anti_entropy_round(all_reach), 0);
    }

    #[test]
    fn anti_entropy_respects_partitions_then_heals() {
        let mut sim = ReplicaSim::new(4);
        sim.write(c(0), n(0), &[n(1), n(2), n(3)], all_reach);
        sim.write(c(0), n(0), &[n(1), n(2), n(3)], |_, to| to == n(1));
        // n(1) is cut off: its newer version cannot propagate.
        let partitioned = |a: NodeId, b: NodeId| a != n(1) && b != n(1);
        sim.anti_entropy_round(partitioned);
        assert!(!sim.converged());
        // Heal: one round suffices for a 3-ring.
        sim.anti_entropy_round(all_reach);
        assert!(sim.converged());
    }

    #[test]
    fn read_repair_pushes_the_newest_version_to_stale_holders() {
        let mut sim = ReplicaSim::new(5);
        sim.write(c(0), n(0), &[n(1), n(2), n(3)], all_reach);
        let out = sim.write(c(0), n(4), &[n(1), n(2), n(3)], |_, to| to == n(2));
        let got = sim.read(c(0), n(0), all_reach);
        assert_eq!(got, Some(out.version));
        assert!(sim.converged(), "read repaired every stale holder");
        let repairs = sim
            .last_exchange()
            .iter()
            .filter(|m| matches!(m, SyncMessage::Repair { .. }))
            .count();
        assert_eq!(repairs, 2);
    }

    #[test]
    fn revive_refills_from_the_nearest_live_replica_within_bound() {
        let mut sim = ReplicaSim::new(6);
        // n(3) hosts chunks 0 and 1; chunk 2 lives elsewhere.
        sim.write(c(0), n(0), &[n(1), n(3), n(5)], all_reach);
        sim.write(c(1), n(0), &[n(2), n(3), n(4)], all_reach);
        sim.write(c(2), n(0), &[n(1), n(2), n(5)], all_reach);
        sim.kill(n(3));
        assert_eq!(sim.held(n(3), c(0)), None);
        let before = sim.recovery_bytes;
        let recovered = sim.revive(n(3), all_reach, hop);
        // Exactly the chunks n(3) hosts - the O(chunks hosted) bound.
        assert_eq!(recovered, 2);
        assert_eq!(sim.recovery_bytes - before, 2);
        assert!(sim.held(n(3), c(0)).is_some());
        assert!(sim.held(n(3), c(1)).is_some());
        assert_eq!(sim.held(n(3), c(2)), None, "non-hosted chunk not pulled");
        assert!(sim.lost_acked_writes().is_empty());
    }

    #[test]
    fn digest_replays_identically_and_tracks_divergence() {
        let run = || {
            let mut sim = ReplicaSim::new(5);
            sim.write(c(0), n(0), &[n(1), n(2)], all_reach);
            sim.write(c(1), n(3), &[n(2), n(4)], all_reach);
            sim.kill(n(4));
            sim.revive(n(4), all_reach, hop);
            sim.anti_entropy_round(all_reach);
            sim.digest()
        };
        assert_eq!(run(), run());
        let mut other = ReplicaSim::new(5);
        other.write(c(0), n(0), &[n(1), n(2)], all_reach);
        assert_ne!(run(), other.digest());
    }

    #[test]
    fn witness_tick_keeps_versions_ahead_of_the_schedule() {
        let mut sim = ReplicaSim::new(3);
        sim.witness_tick(100);
        let out = sim.write(c(0), n(0), &[n(1), n(2)], all_reach);
        assert!(out.version.ts > 100);
        assert_eq!(sim.clock(), out.version.ts);
    }
}
