//! The per-chunk protocol round (the body of Algorithm 2).
//!
//! One round caches one chunk: the producer broadcasts NPI, clients bid
//! (`α` per tick), send TIGHT when a candidate's estimated contention
//! cost is covered, escalate to SPAN when the relay bid `γ` is covered,
//! and a candidate promotes itself to ADMIN when it has gathered
//! [`SimConfig::span_threshold`] SPAN supporters *and* the resource
//! contributions it has observed cover its own Fairness Degree Cost —
//! the distributed analog of the centralized `Σ_j β_ij ≥ f_i` rule
//! (supporters keep bidding `U_β` per tick from the moment their TIGHT
//! arrived, so the admin can account the collected `β` locally).
//!
//! Clients that run out of candidates fall back to fetching from the
//! producer, which guarantees termination even under message loss.

use peercache_core::{ChunkId, Network};
use peercache_graph::paths::bfs_hops;
use peercache_graph::NodeId;

use crate::engine::{Engine, JitterConfig, LossConfig, Tick};
use peercache_obs as obs;

use crate::protocol::{Message, MessageStats};
use crate::view::LocalView;

/// Parameters of one protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Bid increment of `α` per tick.
    pub u_alpha: f64,
    /// Bid increment of `β` per tick (per tight candidate).
    pub u_beta: f64,
    /// Bid increment of `γ` per tick (per tight candidate).
    pub u_gamma: f64,
    /// SPAN supporters required before a node declares itself ADMIN
    /// (the `M` of Algorithm 2).
    pub span_threshold: usize,
    /// A client abandons peer caching and fetches from the producer
    /// once `α` exceeds this multiple of its costliest visible peer.
    pub give_up_factor: f64,
    /// Hard tick budget per chunk round.
    pub max_ticks: Tick,
    /// Message-loss fault injection.
    pub loss: LossConfig,
    /// Random extra delivery delay.
    pub jitter: JitterConfig,
    /// Mid-round churn: `(tick, node)` pairs at which a peer dies.
    /// A dead node stops bidding and serving, messages addressed to it
    /// vanish, and any client frozen on it as provider reverts to
    /// bidding — re-electing an ADMIN or falling back to the producer.
    /// Entries naming the producer are ignored (the producer is the
    /// round's anchor and cannot die).
    pub deaths: Vec<(Tick, NodeId)>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            u_alpha: 1.0,
            u_beta: 1.0,
            u_gamma: 1.0,
            span_threshold: 4,
            give_up_factor: 2.5,
            max_ticks: 100_000,
            loss: LossConfig::default(),
            jitter: JitterConfig::default(),
            deaths: Vec::new(),
        }
    }
}

/// Result of one chunk's protocol round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Nodes that declared themselves ADMIN (will cache the chunk).
    pub admins: Vec<NodeId>,
    /// Delivered/dropped message counters (CC traffic excluded — it is
    /// accounted by [`crate::view::build_views`]).
    pub stats: MessageStats,
    /// Ticks until every client settled.
    pub ticks: Tick,
    /// Clients that gave up on peers and fell back to the producer.
    pub producer_fallbacks: usize,
    /// Nodes that died mid-round (scheduled deaths actually applied).
    pub deaths: usize,
    /// Clients that resumed bidding because the provider they were
    /// frozen on died — each is one ADMIN re-election attempt.
    pub re_elections: usize,
}

/// How often (in ticks) the producer re-broadcasts NPI to nodes that
/// have not joined the round yet (loss recovery).
const NPI_RETRANSMIT_INTERVAL: Tick = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the NPI announcement.
    Idle,
    /// Bidding.
    Active,
    /// Served; bids stopped.
    Frozen,
    /// Volunteered to cache the chunk.
    Admin,
}

#[derive(Debug, Clone)]
struct NodeState {
    phase: Phase,
    alpha: f64,
    tight_sent: Vec<bool>,
    span_sent: Vec<bool>,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    /// TIGHT/SPAN requesters and the tick their first request arrived.
    requesters: Vec<(NodeId, Tick)>,
    /// Nodes whose SPAN escalation reached us (by identity, so a
    /// supporter's death can strike it from the election tally).
    span_from: Vec<NodeId>,
    /// Who froze us — the admin or relay this node is served through.
    /// `None` while unsettled, and for self-sufficient phases (ADMIN,
    /// producer fallback). When the provider dies the node thaws.
    provider: Option<NodeId>,
}

impl NodeState {
    fn new(member_count: usize) -> Self {
        NodeState {
            phase: Phase::Idle,
            alpha: 0.0,
            tight_sent: vec![false; member_count],
            span_sent: vec![false; member_count],
            gamma: vec![0.0; member_count],
            beta: vec![0.0; member_count],
            requesters: Vec::new(),
            span_from: Vec::new(),
            provider: None,
        }
    }

    fn settled(&self) -> bool {
        matches!(self.phase, Phase::Frozen | Phase::Admin)
    }
}

/// Runs the protocol for one chunk and returns the elected ADMIN set.
///
/// `views` must have been built for the network's *current* caching
/// state (see [`crate::view::build_views`]).
// Dense per-node state arrays (`states`, `dead`, `producer_hops`) are all
// sized to `views.len()` = node_count and indexed by NodeId/member indices
// validated at view construction, so indexing cannot panic here.
#[allow(clippy::indexing_slicing)]
pub fn run_chunk_round(
    net: &Network,
    views: &[LocalView],
    chunk: ChunkId,
    cfg: &SimConfig,
) -> RoundOutcome {
    let producer = net.producer();
    let producer_hops = bfs_hops(net.graph(), producer);
    let mut engine = Engine::with_faults(cfg.loss, cfg.jitter);
    let mut states: Vec<NodeState> = views
        .iter()
        .map(|v| NodeState::new(v.members().len()))
        .collect();
    states[producer.index()].phase = Phase::Admin; // always serving
    let mut fallbacks = 0usize;
    let mut dead = vec![false; views.len()];
    let mut deaths_applied = 0usize;
    let mut re_elections = 0usize;

    // NPI broadcast: one message per client, delivered at hop distance.
    for j in net.clients() {
        let hops = producer_hops[j.index()].unwrap_or(1);
        engine.send(j, hops, Message::Npi { chunk });
    }

    let mut tick: Tick = 0;
    while tick < cfg.max_ticks {
        tick += 1;

        // Churn: apply every death scheduled at (or before) this tick.
        // Scheduled in id order within a tick for determinism.
        for &(t, node) in &cfg.deaths {
            if t <= tick && node != producer && node.index() < dead.len() && !dead[node.index()] {
                apply_death(net, &mut states, &mut dead, node, &mut re_elections);
                deaths_applied += 1;
            }
        }

        // Lossy links can swallow the NPI broadcast; the producer
        // periodically re-announces so every node eventually joins.
        if tick.is_multiple_of(NPI_RETRANSMIT_INTERVAL) {
            for j in net.clients() {
                if states[j.index()].phase == Phase::Idle && !dead[j.index()] {
                    let hops = producer_hops[j.index()].unwrap_or(1);
                    engine.send(j, hops, Message::Npi { chunk });
                }
            }
        }

        // Deliver everything due at this tick. Messages addressed to a
        // dead node vanish into the void (in-flight messages *from* a
        // node that has since died still arrive — radio waves do not
        // recall themselves).
        while engine.next_time().is_some_and(|t| t <= tick) {
            // `next_time` just peeked a queue entry, so a delivery exists;
            // breaking on a phantom entry keeps the path panic-free (P1).
            let Some(d) = engine.next_delivery() else {
                break;
            };
            if dead[d.to.index()] {
                continue;
            }
            handle_message(
                net,
                views,
                cfg,
                &mut states,
                &mut engine,
                &dead,
                d.to,
                d.msg,
                tick,
            );
        }

        // Per-tick bidding for active clients, in id order.
        for j in net.clients() {
            if states[j.index()].phase != Phase::Active || dead[j.index()] {
                continue;
            }
            let view = &views[j.index()];
            let st = &mut states[j.index()];
            st.alpha += cfg.u_alpha;
            for idx in 0..view.members().len() {
                let cost = view.cost(idx);
                if !cost.is_finite() {
                    continue;
                }
                if !st.tight_sent[idx] && st.alpha >= cost {
                    st.tight_sent[idx] = true;
                    engine.send(
                        view.members()[idx],
                        view.hops(idx),
                        Message::Tight { from: j },
                    );
                }
                if st.tight_sent[idx] {
                    st.beta[idx] += cfg.u_beta;
                    st.gamma[idx] += cfg.u_gamma;
                    if !st.span_sent[idx] && st.gamma[idx] >= cost {
                        st.span_sent[idx] = true;
                        engine.send(
                            view.members()[idx],
                            view.hops(idx),
                            Message::Span { from: j },
                        );
                    }
                }
            }
            // Fallback: no peer left worth waiting for.
            if st.alpha > cfg.give_up_factor * view.max_cost() + 1.0 {
                st.phase = Phase::Frozen;
                st.provider = None; // served by the producer directly
                fallbacks += 1;
            }
        }

        // Promotion checks (β accounting advances with time, not only
        // with message arrivals).
        for i in net.clients() {
            if !dead[i.index()] {
                try_promote(net, cfg, &mut states, &mut engine, i, tick);
            }
        }

        if net
            .clients()
            .all(|j| dead[j.index()] || states[j.index()].settled())
        {
            break;
        }
    }

    // Anything still unsettled at the budget is served by the producer.
    for j in net.clients() {
        if !dead[j.index()] && !states[j.index()].settled() {
            states[j.index()].phase = Phase::Frozen;
            states[j.index()].provider = None;
            fallbacks += 1;
        }
    }

    let admins: Vec<NodeId> = net
        .clients()
        .filter(|&i| states[i.index()].phase == Phase::Admin && !dead[i.index()])
        .collect();
    let stats = *engine.stats();
    if obs::enabled() {
        let mut fields = vec![
            ("chunk", obs::Value::from(chunk.index())),
            ("converged_tick", obs::Value::from(tick)),
            ("converged", obs::Value::from(tick < cfg.max_ticks)),
            ("admins", obs::Value::from(admins.len())),
            ("producer_fallbacks", obs::Value::from(fallbacks)),
            ("dropped", obs::Value::from(stats.dropped)),
            ("deaths", obs::Value::from(deaths_applied)),
            ("re_elections", obs::Value::from(re_elections)),
        ];
        for (kind, n) in stats.per_kind() {
            fields.push((kind.label(), obs::Value::from(n)));
        }
        obs::event("dist.sim.converged", &fields);
    }
    RoundOutcome {
        admins,
        stats,
        ticks: tick,
        producer_fallbacks: fallbacks,
        deaths: deaths_applied,
        re_elections,
    }
}

/// Kills `node`: strikes it from every election tally and thaws every
/// client that was frozen on it as provider, sending them back to
/// bidding (the distributed analog of the world layer's orphan repair —
/// the thawed clients re-elect an ADMIN or fall back to the producer).
// `states`/`dead` are node-count-sized; `node` is bounds-checked by the
// caller before scheduling the death.
#[allow(clippy::indexing_slicing)]
fn apply_death(
    net: &Network,
    states: &mut [NodeState],
    dead: &mut [bool],
    node: NodeId,
    re_elections: &mut usize,
) {
    dead[node.index()] = true;
    for j in net.clients() {
        if j == node || dead[j.index()] {
            continue;
        }
        let st = &mut states[j.index()];
        st.requesters.retain(|&(r, _)| r != node);
        st.span_from.retain(|&r| r != node);
        if st.phase == Phase::Frozen && st.provider == Some(node) {
            st.phase = Phase::Active;
            st.provider = None;
            *re_elections += 1;
        }
    }
}

// Per-node arrays are node-count-sized and member indices come from
// `LocalView::index_of`, which only returns in-bounds positions.
#[allow(clippy::too_many_arguments, clippy::indexing_slicing)]
fn handle_message(
    net: &Network,
    views: &[LocalView],
    cfg: &SimConfig,
    states: &mut [NodeState],
    engine: &mut Engine,
    dead: &[bool],
    to: NodeId,
    msg: Message,
    now: Tick,
) {
    match msg {
        Message::Npi { .. } => {
            if states[to.index()].phase == Phase::Idle {
                states[to.index()].phase = Phase::Active;
            }
        }
        Message::Tight { from } | Message::Span { from } => {
            let is_span = matches!(msg, Message::Span { .. });
            let phase = states[to.index()].phase;
            if !states[to.index()]
                .requesters
                .iter()
                .any(|&(r, _)| r == from)
            {
                states[to.index()].requesters.push((from, now));
            }
            match phase {
                Phase::Admin => {
                    // Producer or an elected admin: serve immediately.
                    engine.send(from, 1, Message::Freeze { provider: to });
                }
                Phase::Frozen if net.remaining(to) == 0 => {
                    // INACTIVE branch (Table I): a node that cannot cache
                    // anything points the requester at itself as a relay
                    // toward its own provider.
                    engine.send(from, 1, Message::Freeze { provider: to });
                }
                Phase::Frozen => {
                    // A served node with spare storage stays quiet: its
                    // requesters keep bidding until an admin emerges or
                    // they fall back to the producer. Answering with a
                    // relay here would freeze the whole network before
                    // any election could gather SPAN support.
                }
                Phase::Active | Phase::Idle => {
                    if is_span {
                        if !states[to.index()].span_from.contains(&from) {
                            states[to.index()].span_from.push(from);
                        }
                        try_promote(net, cfg, states, engine, to, now);
                    }
                }
            }
        }
        Message::Freeze { provider } => {
            // A freeze naming an already-dead provider is stale news
            // from before the death; accepting it would strand the
            // client on a corpse.
            if dead[provider.index()] {
                return;
            }
            if states[to.index()].phase == Phase::Active || states[to.index()].phase == Phase::Idle
            {
                states[to.index()].phase = Phase::Frozen;
                states[to.index()].provider = Some(provider);
            }
        }
        Message::NAdmin { admin } => {
            if dead[admin.index()] {
                return;
            }
            if states[to.index()].phase == Phase::Active || states[to.index()].phase == Phase::Idle
            {
                states[to.index()].phase = Phase::Frozen;
                states[to.index()].provider = Some(admin);
                // Our pending requesters can reach the chunk through us.
                let requesters: Vec<NodeId> = states[to.index()]
                    .requesters
                    .iter()
                    .map(|&(r, _)| r)
                    .collect();
                for r in requesters {
                    engine.send(r, 1, Message::Freeze { provider: admin });
                }
            }
        }
        Message::BAdmin { admin } => {
            // Freeze only when we actually contributed resources toward
            // this admin (the paper's β_j > Con_j guard).
            if dead[admin.index()] {
                return;
            }
            let view = &views[to.index()];
            if states[to.index()].phase == Phase::Active {
                if let Some(idx) = view.index_of(admin) {
                    if states[to.index()].beta[idx] > 0.0 {
                        states[to.index()].phase = Phase::Frozen;
                        states[to.index()].provider = Some(admin);
                        let requesters: Vec<NodeId> = states[to.index()]
                            .requesters
                            .iter()
                            .map(|&(r, _)| r)
                            .collect();
                        for r in requesters {
                            engine.send(r, 1, Message::Freeze { provider: admin });
                        }
                    }
                }
            }
        }
        Message::CollectContention { .. } | Message::ContentionReply { .. } => {
            // CC traffic is modeled by `view::build_views`.
        }
    }
}

/// Declares `i` ADMIN when it has storage, enough SPAN supporters, and
/// the observed resource contributions cover its fairness cost.
// Same bound proof as `handle_message`: node-count-sized arrays,
// view-validated member indices.
#[allow(clippy::indexing_slicing)]
fn try_promote(
    net: &Network,
    cfg: &SimConfig,
    states: &mut [NodeState],
    engine: &mut Engine,
    i: NodeId,
    now: Tick,
) {
    if states[i.index()].phase != Phase::Active && states[i.index()].phase != Phase::Idle {
        return;
    }
    if net.remaining(i) == 0 {
        return; // a full node never volunteers
    }
    if states[i.index()].span_from.len() < cfg.span_threshold {
        return;
    }
    // Collected β estimate: every requester bids U_β per tick since its
    // request arrived.
    let collected: f64 = states[i.index()]
        .requesters
        .iter()
        .map(|&(_, since)| cfg.u_beta * (now.saturating_sub(since)) as f64)
        .sum();
    let f_i = net.fairness_cost(i);
    if collected < f_i {
        return;
    }
    states[i.index()].phase = Phase::Admin;
    let requesters: Vec<NodeId> = states[i.index()]
        .requesters
        .iter()
        .map(|&(r, _)| r)
        .collect();
    for r in &requesters {
        engine.send(*r, 1, Message::NAdmin { admin: i });
    }
    for j in net.clients() {
        if j != i && !requesters.contains(&j) {
            engine.send(j, 1, Message::BAdmin { admin: i });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MessageKind;
    use crate::view::build_views;
    use peercache_core::workload::paper_grid;

    fn round(side: usize, k: u32, cfg: &SimConfig) -> RoundOutcome {
        let net = paper_grid(side).unwrap();
        let (views, _) = build_views(&net, k).unwrap();
        run_chunk_round(&net, &views, ChunkId::new(0), cfg)
    }

    #[test]
    fn round_terminates_and_elects_admins() {
        let out = round(6, 2, &SimConfig::default());
        assert!(out.ticks < SimConfig::default().max_ticks);
        assert!(!out.admins.is_empty(), "a 6x6 grid should elect caches");
        assert!(out.stats[MessageKind::Tight] > 0);
        assert!(out.stats[MessageKind::Span] > 0);
    }

    #[test]
    fn producer_never_becomes_admin() {
        let net = paper_grid(4).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert!(!out.admins.contains(&net.producer()));
    }

    #[test]
    fn one_hop_scope_elects_fewer_admins_than_two_hop() {
        let k1 = round(6, 1, &SimConfig::default());
        let k2 = round(6, 2, &SimConfig::default());
        assert!(
            k1.admins.len() <= k2.admins.len(),
            "k=1 gave {} admins, k=2 gave {}",
            k1.admins.len(),
            k2.admins.len()
        );
    }

    #[test]
    fn huge_span_threshold_blocks_elections() {
        let cfg = SimConfig {
            span_threshold: 10_000,
            ..Default::default()
        };
        let out = round(4, 2, &cfg);
        assert!(out.admins.is_empty());
        // Everybody fell back to the producer but the round terminated.
        assert!(out.producer_fallbacks > 0);
    }

    #[test]
    fn full_nodes_never_volunteer() {
        let mut net = paper_grid(3).unwrap();
        // Fill every client completely.
        for j in net.clients().collect::<Vec<_>>() {
            for c in 0..net.capacity(j) {
                net.cache(j, ChunkId::new(100 + c)).unwrap();
            }
        }
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert!(out.admins.is_empty());
    }

    #[test]
    fn rounds_are_deterministic() {
        let a = round(5, 2, &SimConfig::default());
        let b = round(5, 2, &SimConfig::default());
        assert_eq!(a.admins, b.admins);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.ticks, b.ticks);
    }

    #[test]
    fn survives_delivery_jitter() {
        let cfg = SimConfig {
            jitter: JitterConfig {
                max_extra_ticks: 4,
                seed: 9,
            },
            ..Default::default()
        };
        let out = round(5, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        // Jitter reorders elections but the protocol still caches.
        assert!(!out.admins.is_empty());
    }

    #[test]
    fn survives_heavy_message_loss() {
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.3,
                seed: 42,
            },
            ..Default::default()
        };
        let out = round(5, 2, &cfg);
        assert!(
            out.ticks < cfg.max_ticks,
            "lossy round must still terminate"
        );
        assert!(out.stats.dropped > 0);
    }

    #[test]
    fn loss_and_jitter_combined_still_converge_via_retransmission() {
        // Both fault injectors at once: 25% drops plus up to 3 ticks of
        // extra delay. NPI retransmission must still pull every client
        // into the round and the round must settle.
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.25,
                seed: 7,
            },
            jitter: JitterConfig {
                max_extra_ticks: 3,
                seed: 11,
            },
            ..Default::default()
        };
        let out = round(6, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        assert!(out.stats.dropped > 0, "25% loss must drop something");
        // Every client settled one way or the other.
        let net = paper_grid(6).unwrap();
        assert!(out.admins.len() + out.producer_fallbacks <= net.graph().node_count());
        assert!(
            !out.admins.is_empty() || out.producer_fallbacks > 0,
            "clients must settle on an admin or the producer"
        );
    }

    #[test]
    fn message_counts_stay_bounded_under_retransmission() {
        // TIGHT and SPAN are sent at most once per (client, candidate)
        // pair regardless of loss, and NPI retransmission is bounded by
        // one broadcast per client per retransmit interval.
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.3,
                seed: 5,
            },
            ..Default::default()
        };
        let net = paper_grid(5).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        let pair_bound: u64 = views.iter().map(|v| v.members().len() as u64).sum();
        assert!(out.stats[MessageKind::Tight] <= pair_bound);
        assert!(out.stats[MessageKind::Span] <= pair_bound);
        let clients = net.graph().node_count() as u64 - 1;
        let npi_bound = clients * (2 + out.ticks / NPI_RETRANSMIT_INTERVAL);
        assert!(
            out.stats[MessageKind::Npi] <= npi_bound,
            "NPI deliveries {} exceed retransmission bound {npi_bound}",
            out.stats[MessageKind::Npi]
        );
    }

    #[test]
    fn death_of_elected_admin_triggers_reelection() {
        // Run once undisturbed to learn who gets elected and when the
        // round settles, then replay with each elected admin dying at
        // each possible tick. Whatever the timing, the round must
        // settle and the corpse must stay out of the admin set; for
        // some (victim, tick) the admin's supporters are caught frozen
        // on it and must thaw back to bidding.
        let net = paper_grid(6).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let baseline = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert!(!baseline.admins.is_empty(), "baseline elects admins");
        let mut saw_reelection = false;
        for &victim in &baseline.admins {
            for t in 1..=baseline.ticks {
                let cfg = SimConfig {
                    deaths: vec![(t, victim)],
                    ..Default::default()
                };
                let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
                assert_eq!(out.deaths, 1);
                assert!(out.ticks < cfg.max_ticks, "churned round must settle");
                assert!(!out.admins.contains(&victim), "dead admins cannot cache");
                saw_reelection |= out.re_elections > 0;
            }
        }
        assert!(
            saw_reelection,
            "some death tick must catch clients frozen on an admin"
        );
    }

    #[test]
    fn dead_nodes_never_join_the_admin_set() {
        let net = paper_grid(5).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let victims = [NodeId::new(0), NodeId::new(24)];
        let cfg = SimConfig {
            deaths: vec![(1, victims[0]), (2, victims[1])],
            ..Default::default()
        };
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        assert_eq!(out.deaths, 2);
        assert!(out.ticks < cfg.max_ticks);
        for v in victims {
            assert!(!out.admins.contains(&v));
        }
    }

    #[test]
    fn producer_death_is_ignored() {
        let net = paper_grid(4).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let cfg = SimConfig {
            deaths: vec![(1, net.producer())],
            ..Default::default()
        };
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        let undisturbed = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert_eq!(out.deaths, 0);
        assert_eq!(out.admins, undisturbed.admins);
        assert_eq!(out.ticks, undisturbed.ticks);
    }

    #[test]
    fn churned_rounds_are_deterministic() {
        // Loss, jitter, and deaths together must still replay exactly.
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.2,
                seed: 3,
            },
            jitter: JitterConfig {
                max_extra_ticks: 2,
                seed: 4,
            },
            deaths: vec![(5, NodeId::new(3)), (40, NodeId::new(12))],
            ..Default::default()
        };
        let a = round(5, 2, &cfg);
        let b = round(5, 2, &cfg);
        assert_eq!(a.admins, b.admins);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.re_elections, b.re_elections);
        assert_eq!(a.deaths, b.deaths);
    }
}
