//! The per-chunk protocol round (the body of Algorithm 2).
//!
//! One round caches one chunk: the producer broadcasts NPI, clients bid
//! (`α` per tick), send TIGHT when a candidate's estimated contention
//! cost is covered, escalate to SPAN when the relay bid `γ` is covered,
//! and a candidate promotes itself to ADMIN when it has gathered
//! [`SimConfig::span_threshold`] SPAN supporters *and* the resource
//! contributions it has observed cover its own Fairness Degree Cost —
//! the distributed analog of the centralized `Σ_j β_ij ≥ f_i` rule
//! (supporters keep bidding `U_β` per tick from the moment their TIGHT
//! arrived, so the admin can account the collected `β` locally).
//!
//! Clients that run out of candidates fall back to fetching from the
//! producer, which guarantees termination even under message loss.
//!
//! # Liveness extensions
//!
//! [`LivenessConfig`] adds three opt-in mechanisms (all off by default,
//! so legacy runs replay byte-identically):
//!
//! * **Retry with backoff** — TIGHT/SPAN are retransmitted up to
//!   `retry_limit` times with deterministic exponential backoff plus
//!   keyed jitter, so a single lost bid no longer stalls an election.
//!   Receivers deduplicate requesters by identity, so retries (and
//!   chaos-duplicated copies) never double-count `β` contributions.
//! * **FREEZE leases** — a frozen client periodically PINGs its
//!   provider; a provider that still serves answers PONG, renewing the
//!   lease. When the lease expires (the provider died silently or a
//!   partition cut it off) the client *deposes* it: thaws back to
//!   bidding and re-elects in its own component.
//! * **Election timeout** — a client that stays unsettled past the
//!   timeout settles explicitly: producer fallback when the producer is
//!   reachable, [`RoundOutcome::degraded`] when a partition window cuts
//!   it off (explicit degradation instead of a burned tick budget).
//!
//! Fault injection beyond loss/jitter — partitions, flapping links,
//! grey nodes, duplication, reordering, corruption — comes from the
//! seeded [`FaultPlan`] in [`SimConfig::chaos`] (see [`crate::chaos`]).

use peercache_core::{ChunkId, Network};
use peercache_graph::paths::bfs_hops;
use peercache_graph::NodeId;

use crate::chaos::{ChaosState, FaultPlan, FaultStats, SendFate};
use crate::engine::{message_span_name, Engine, JitterConfig, LossConfig, Tick};
use peercache_obs as obs;

use crate::protocol::{Message, MessageStats};
use crate::view::LocalView;

/// Parameters of one protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Bid increment of `α` per tick.
    pub u_alpha: f64,
    /// Bid increment of `β` per tick (per tight candidate).
    pub u_beta: f64,
    /// Bid increment of `γ` per tick (per tight candidate).
    pub u_gamma: f64,
    /// SPAN supporters required before a node declares itself ADMIN
    /// (the `M` of Algorithm 2).
    pub span_threshold: usize,
    /// A client abandons peer caching and fetches from the producer
    /// once `α` exceeds this multiple of its costliest visible peer.
    pub give_up_factor: f64,
    /// Hard tick budget per chunk round.
    pub max_ticks: Tick,
    /// Message-loss fault injection.
    pub loss: LossConfig,
    /// Random extra delivery delay.
    pub jitter: JitterConfig,
    /// Mid-round churn: `(tick, node)` pairs at which a peer dies.
    /// A dead node stops bidding and serving, messages addressed to it
    /// vanish, and any client frozen on it as provider reverts to
    /// bidding — re-electing an ADMIN or falling back to the producer.
    /// Entries naming the producer are ignored (the producer is the
    /// round's anchor and cannot die). Merged with [`FaultPlan::deaths`]
    /// into one tick-indexed schedule.
    pub deaths: Vec<(Tick, NodeId)>,
    /// Seeded chaos plan: partitions, flapping links, grey nodes,
    /// duplication, reordering, corruption, extra deaths.
    pub chaos: FaultPlan,
    /// Retry / lease / election-timeout parameters.
    pub liveness: LivenessConfig,
    /// Optional node → shard homes (region homes of a
    /// `peercache_core::sharded::ShardedWorld`). When non-empty, every
    /// scheduled control message whose sender and receiver live in
    /// different shards is counted on `dist.cross_shard_msgs` — the
    /// wire-level view of the sharded world's router traffic. Empty
    /// (the default) keeps the accounting inert.
    pub shard_map: Vec<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            u_alpha: 1.0,
            u_beta: 1.0,
            u_gamma: 1.0,
            span_threshold: 4,
            give_up_factor: 2.5,
            max_ticks: 100_000,
            loss: LossConfig::default(),
            jitter: JitterConfig::default(),
            deaths: Vec::new(),
            chaos: FaultPlan::default(),
            liveness: LivenessConfig::default(),
            shard_map: Vec::new(),
        }
    }
}

/// Retry, lease, and election-timeout parameters. The defaults disable
/// every mechanism, preserving the legacy protocol exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Maximum transmissions of each TIGHT/SPAN per `(client,
    /// candidate)` pair; 1 means no retries (legacy behavior).
    pub retry_limit: u32,
    /// Backoff before the first retry, doubling per attempt.
    pub backoff_base: Tick,
    /// Maximum deterministic jitter added to each backoff (keyed on
    /// `(node, candidate, attempt)` — no RNG state, so replays and the
    /// chaos RNG stream are unaffected).
    pub backoff_jitter: Tick,
    /// FREEZE lease duration; 0 disables leases. Frozen clients ping
    /// their provider every `lease_ticks / 3` ticks and depose it when
    /// no PONG renews the lease in time.
    pub lease_ticks: Tick,
    /// A client unsettled for this many ticks settles explicitly —
    /// producer fallback when reachable, degraded when partitioned off.
    /// 0 disables the timeout.
    pub election_timeout: Tick,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            retry_limit: 1,
            backoff_base: 8,
            backoff_jitter: 3,
            lease_ticks: 0,
            election_timeout: 0,
        }
    }
}

/// Result of one chunk's protocol round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Nodes that declared themselves ADMIN (will cache the chunk).
    pub admins: Vec<NodeId>,
    /// Delivered/dropped message counters (CC traffic excluded — it is
    /// accounted by [`crate::view::build_views`]).
    pub stats: MessageStats,
    /// Ticks until every client settled.
    pub ticks: Tick,
    /// Clients that gave up on peers and fell back to the producer.
    pub producer_fallbacks: usize,
    /// Nodes that died mid-round (scheduled deaths actually applied).
    pub deaths: usize,
    /// Clients that resumed bidding because the provider they were
    /// frozen on died — each is one ADMIN re-election attempt.
    pub re_elections: usize,
    /// TIGHT/SPAN retransmissions sent by the retry mechanism.
    pub retries: u64,
    /// Clients settled by the election timeout.
    pub timeouts: u64,
    /// Providers deposed by lease expiry (client thawed back to
    /// bidding because no PONG arrived in time).
    pub depositions: u64,
    /// Tick of the first deposition, if any.
    pub first_deposition: Option<Tick>,
    /// Clients that ended the round cut off from the producer by a
    /// partition — explicit degradation, not silent non-convergence.
    pub degraded: Vec<NodeId>,
    /// Every ADMIN election as `(tick, node)`, in election order.
    pub elections: Vec<(Tick, NodeId)>,
    /// Per-cause chaos fault counters (partition/flap/grey drops,
    /// corruption, duplication, reordering). Disjoint from
    /// [`MessageStats::dropped`], which counts plain loss.
    pub faults: FaultStats,
    /// Engine bookkeeping faults survived without aborting (would-be
    /// [`crate::ProtocolError::MissingPayload`] occurrences).
    pub protocol_errors: u64,
}

/// How often (in ticks) the producer re-broadcasts NPI to nodes that
/// have not joined the round yet (loss recovery).
const NPI_RETRANSMIT_INTERVAL: Tick = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the NPI announcement.
    Idle,
    /// Bidding.
    Active,
    /// Served; bids stopped.
    Frozen,
    /// Volunteered to cache the chunk.
    Admin,
    /// Cut off from the producer by a partition and timed out —
    /// settled, but explicitly unserved this round.
    Degraded,
}

#[derive(Debug, Clone)]
struct NodeState {
    phase: Phase,
    alpha: f64,
    /// TIGHT transmissions per candidate (0 = not sent yet).
    tight_attempts: Vec<u32>,
    /// Earliest tick for the next TIGHT retry, per candidate.
    tight_next: Vec<Tick>,
    /// SPAN transmissions per candidate (0 = not sent yet).
    span_attempts: Vec<u32>,
    /// Earliest tick for the next SPAN retry, per candidate.
    span_next: Vec<Tick>,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    /// TIGHT/SPAN requesters and the tick their first request arrived.
    requesters: Vec<(NodeId, Tick)>,
    /// Nodes whose SPAN escalation reached us (by identity, so a
    /// supporter's death can strike it from the election tally).
    span_from: Vec<NodeId>,
    /// Who froze us — the admin or relay this node is served through.
    /// `None` while unsettled, and for self-sufficient phases (ADMIN,
    /// producer fallback). When the provider dies the node thaws.
    provider: Option<NodeId>,
    /// Tick this node (re-)entered the bidding pool, for the election
    /// timeout.
    activated_at: Tick,
    /// Lease expiry tick (meaningful only while frozen on a provider
    /// with leases enabled).
    lease_until: Tick,
    /// Last tick a lease PING was sent.
    last_ping: Tick,
    /// Trace-only: span id of the event that (re-)activated this node
    /// (the NPI delivery, or a deposition). Parents this node's
    /// spontaneous sends; 0 when untraced. Never read by protocol
    /// logic.
    activate_span: u64,
    /// Trace-only: span id of the FREEZE/NADMIN/BADMIN delivery this
    /// node froze on. Parents its lease PINGs and an eventual
    /// deposition; 0 when untraced.
    freeze_span: u64,
}

impl NodeState {
    fn new(member_count: usize) -> Self {
        NodeState {
            phase: Phase::Idle,
            alpha: 0.0,
            tight_attempts: vec![0; member_count],
            tight_next: vec![0; member_count],
            span_attempts: vec![0; member_count],
            span_next: vec![0; member_count],
            gamma: vec![0.0; member_count],
            beta: vec![0.0; member_count],
            requesters: Vec::new(),
            span_from: Vec::new(),
            provider: None,
            activated_at: 0,
            lease_until: 0,
            last_ping: 0,
            activate_span: 0,
            freeze_span: 0,
        }
    }

    fn settled(&self) -> bool {
        matches!(self.phase, Phase::Frozen | Phase::Admin | Phase::Degraded)
    }

    /// Freezes this node on `provider`, starting a lease when enabled.
    /// `span` is the trace span id of the freezing delivery (0 when
    /// untraced) — lease PINGs and an eventual deposition parent to it.
    fn freeze_on(&mut self, provider: NodeId, now: Tick, lease_ticks: Tick, span: u64) {
        self.phase = Phase::Frozen;
        self.provider = Some(provider);
        self.freeze_span = span;
        if lease_ticks > 0 {
            self.lease_until = now + lease_ticks;
            self.last_ping = now;
        }
    }
}

/// Span id of the per-round root span (`dist.round`) in a traced run.
const ROOT_SPAN: u64 = 1;

/// Trace identity and span-id allocator for one traced round. Span ids
/// are a plain counter (root = 1, children from 2 up), so replays
/// allocate identically; ids are never read by protocol logic.
#[derive(Debug)]
struct RoundTrace {
    trace: u64,
    next_span: u64,
}

impl RoundTrace {
    fn alloc(&mut self, parent: u64) -> obs::TraceContext {
        let span = self.next_span;
        self.next_span += 1;
        obs::TraceContext {
            trace: self.trace,
            span,
            parent,
        }
    }
}

/// The deterministic trace id of one chunk round: a pure hash of the
/// seeds that shape the round, the chunk index, and a topology
/// fingerprint (node/edge counts and the producer), so a replay maps
/// to the same trace while different chunks, configs, or networks map
/// to different ones.
pub fn round_trace_id(net: &Network, cfg: &SimConfig, chunk: ChunkId) -> u64 {
    let topology = (net.node_count() as u64)
        .wrapping_add((net.graph().edge_count() as u64).rotate_left(16))
        .wrapping_add((net.producer().index() as u64).rotate_left(40));
    splitmix64(
        cfg.chaos
            .seed
            .wrapping_add(cfg.loss.seed.rotate_left(24))
            .wrapping_add(cfg.jitter.seed.rotate_left(48))
            .wrapping_add((chunk.index() as u64).wrapping_mul(0x9E37_79B9))
            .wrapping_add(splitmix64(topology)),
    )
}

/// The engine plus the chaos layer: every protocol send goes through
/// here so fault injection sees `(now, from, to)` for every message.
/// With tracing on, every send also allocates a causal span whose fate
/// (dropped at the chaos layer, dropped by loss, delivered, expired)
/// is recorded exactly once.
#[derive(Debug)]
struct Wire {
    engine: Engine,
    chaos: ChaosState,
    trace: Option<RoundTrace>,
}

impl Wire {
    fn send(&mut self, now: Tick, from: NodeId, to: NodeId, hops: u32, msg: Message, parent: u64) {
        match self.chaos.on_send(now, from, to, hops) {
            SendFate::Dropped(cause) => {
                if let Some(tr) = &mut self.trace {
                    let ctx = tr.alloc(parent);
                    obs::emit_span(
                        message_span_name(msg.kind()),
                        ctx,
                        now,
                        now,
                        cause.label(),
                        &[
                            ("from", obs::Value::from(from.index())),
                            ("to", obs::Value::from(to.index())),
                        ],
                    );
                }
            }
            SendFate::Deliver {
                extra_delay,
                copies,
            } => {
                for copy in 0..copies {
                    let ctx = match &mut self.trace {
                        Some(tr) => tr.alloc(parent),
                        None => obs::TraceContext::default(),
                    };
                    let scheduled = self.engine.send_tagged(
                        to,
                        hops.saturating_add(extra_delay),
                        msg,
                        now,
                        copy > 0,
                        ctx,
                    );
                    if scheduled && obs::enabled() && self.engine.crosses_shards(from, to) {
                        obs::counter("dist.cross_shard_msgs").incr();
                    }
                    if !scheduled && self.trace.is_some() {
                        obs::emit_span(
                            message_span_name(msg.kind()),
                            ctx,
                            now,
                            now,
                            "dropped:loss",
                            &[
                                ("from", obs::Value::from(from.index())),
                                ("to", obs::Value::from(to.index())),
                            ],
                        );
                    }
                }
            }
        }
    }

    /// Emits an instantaneous marker span (retry, deposition, election,
    /// timeout) and returns its id for parenting follow-on sends.
    /// Returns `parent` unchanged when tracing is off, so callers can
    /// thread the result unconditionally.
    fn mark(
        &mut self,
        name: &'static str,
        parent: u64,
        now: Tick,
        fate: &str,
        node: NodeId,
    ) -> u64 {
        match &mut self.trace {
            Some(tr) => {
                let ctx = tr.alloc(parent);
                obs::emit_span(
                    name,
                    ctx,
                    now,
                    now,
                    fate,
                    &[("node", obs::Value::from(node.index()))],
                );
                ctx.span
            }
            None => parent,
        }
    }
}

/// Per-tick telemetry series of one traced round (only allocated when
/// tracing is on).
#[derive(Debug)]
struct RoundSeries {
    queue_depth: obs::TimeSeries,
    in_flight: obs::TimeSeries,
    unsettled: obs::TimeSeries,
}

impl RoundSeries {
    fn new() -> Self {
        RoundSeries {
            queue_depth: obs::TimeSeries::new("sim.queue_depth"),
            in_flight: obs::TimeSeries::new("sim.in_flight"),
            unsettled: obs::TimeSeries::new("sim.unsettled_clients"),
        }
    }

    fn sample(&mut self, tick: Tick, queued: usize, in_flight: usize, unsettled: usize) {
        self.queue_depth.record(tick, queued as i64);
        self.in_flight.record(tick, in_flight as i64);
        self.unsettled.record(tick, unsettled as i64);
    }

    fn emit(&self) {
        self.queue_depth.emit();
        self.in_flight.emit();
        self.unsettled.emit();
    }
}

/// `span` if it is a real span id, the round root otherwise — so sends
/// triggered by state whose causal span was never recorded still attach
/// to the trace instead of dangling.
fn parent_or_root(span: u64) -> u64 {
    if span == 0 {
        ROOT_SPAN
    } else {
        span
    }
}

/// Mutable per-round counters threaded through the handlers.
#[derive(Debug, Default)]
struct Tally {
    fallbacks: usize,
    deaths_applied: usize,
    re_elections: usize,
    retries: u64,
    timeouts: u64,
    depositions: u64,
    first_deposition: Option<Tick>,
    elections: Vec<(Tick, NodeId)>,
}

/// SplitMix64 — a pure hash used for deterministic retry jitter; keyed
/// entirely by protocol state, so it introduces no ambient randomness.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Exponential backoff with keyed jitter: `base << (attempt-1)` plus a
/// deterministic `0..=backoff_jitter` offset so synchronized retries
/// de-synchronize without drawing from the chaos RNG.
fn retry_delay(liv: &LivenessConfig, node: NodeId, member: usize, attempt: u32, salt: u64) -> Tick {
    let exp = liv
        .backoff_base
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
    if liv.backoff_jitter == 0 {
        return exp.max(1);
    }
    let key = splitmix64(
        (node.index() as u64)
            .wrapping_mul(0x1_0000_0001)
            .wrapping_add(member as u64)
            .wrapping_add(u64::from(attempt) << 32)
            .wrapping_add(salt),
    );
    exp.max(1) + key % (liv.backoff_jitter + 1)
}

/// Runs the protocol for one chunk and returns the elected ADMIN set.
///
/// `views` must have been built for the network's *current* caching
/// state (see [`crate::view::build_views`]).
// Dense per-node state arrays (`states`, `dead`, `producer_hops`) are all
// sized to `views.len()` = node_count and indexed by NodeId/member indices
// validated at view construction, so indexing cannot panic here.
#[allow(clippy::indexing_slicing)]
pub fn run_chunk_round(
    net: &Network,
    views: &[LocalView],
    chunk: ChunkId,
    cfg: &SimConfig,
) -> RoundOutcome {
    let producer = net.producer();
    let producer_hops = bfs_hops(net.graph(), producer);
    // The tracing decision is latched once per round: ids feed nothing
    // but the JSONL sink, so outcomes are identical with tracing on or
    // off.
    let tracing = obs::enabled();
    let mut engine = Engine::with_faults(cfg.loss, cfg.jitter);
    if !cfg.shard_map.is_empty() {
        engine.set_shard_map(cfg.shard_map.clone());
    }
    let mut wire = Wire {
        engine,
        chaos: ChaosState::compile(&cfg.chaos, &cfg.deaths),
        trace: tracing.then(|| RoundTrace {
            trace: round_trace_id(net, cfg, chunk),
            next_span: ROOT_SPAN + 1,
        }),
    };
    let mut series = tracing.then(RoundSeries::new);
    let mut states: Vec<NodeState> = views
        .iter()
        .map(|v| NodeState::new(v.members().len()))
        .collect();
    states[producer.index()].phase = Phase::Admin; // always serving
    let mut dead = vec![false; views.len()];
    let mut tally = Tally::default();

    // NPI broadcast: one message per client, delivered at hop distance.
    for j in net.clients() {
        let hops = producer_hops[j.index()].unwrap_or(1);
        wire.send(0, producer, j, hops, Message::Npi { chunk }, ROOT_SPAN);
    }

    let mut tick: Tick = 0;
    while tick < cfg.max_ticks {
        tick += 1;

        // Churn: apply every death due at this tick. The schedule is
        // pre-sorted by (tick, node) and consumed through a cursor, so
        // this is O(deaths due now), not O(all deaths) per tick.
        let due: Vec<(Tick, NodeId)> = wire.chaos.deaths_due(tick).to_vec();
        for (_, node) in due {
            if node != producer && node.index() < dead.len() && !dead[node.index()] {
                apply_death(net, &mut states, &mut dead, node, tick, &mut tally);
                tally.deaths_applied += 1;
            }
        }

        // Lossy links can swallow the NPI broadcast; the producer
        // periodically re-announces so every node eventually joins.
        if tick.is_multiple_of(NPI_RETRANSMIT_INTERVAL) {
            for j in net.clients() {
                if states[j.index()].phase == Phase::Idle && !dead[j.index()] {
                    let hops = producer_hops[j.index()].unwrap_or(1);
                    wire.send(tick, producer, j, hops, Message::Npi { chunk }, ROOT_SPAN);
                }
            }
        }

        // Deliver everything due at this tick, one pop per handler run
        // (handler sends draw the loss/jitter RNGs, so pop order and
        // send order must stay interleaved exactly as scheduled).
        // Messages addressed to a dead node vanish into the void
        // (in-flight messages *from* a node that has since died still
        // arrive — radio waves do not recall themselves).
        while let Some(d) = wire.engine.next_delivery_due(tick) {
            let to_dead = dead[d.to.index()];
            if wire.trace.is_some() {
                let fate = if to_dead {
                    "dead"
                } else if d.dup {
                    "delivered_dup"
                } else {
                    "delivered"
                };
                obs::emit_span(
                    message_span_name(d.msg.kind()),
                    d.ctx,
                    d.sent,
                    d.at,
                    fate,
                    &[("to", obs::Value::from(d.to.index()))],
                );
            }
            if to_dead {
                continue;
            }
            handle_message(
                net,
                views,
                cfg,
                &mut states,
                &mut wire,
                &dead,
                &mut tally,
                d.to,
                d.msg,
                tick,
                d.ctx.span,
            );
        }

        // Lease maintenance: frozen clients ping their provider; an
        // expired lease deposes it (the provider died silently or a
        // partition cut it off) and the client re-enters the election.
        if cfg.liveness.lease_ticks > 0 {
            let ping_every = (cfg.liveness.lease_ticks / 3).max(1);
            for j in net.clients() {
                if dead[j.index()] || states[j.index()].phase != Phase::Frozen {
                    continue;
                }
                let Some(p) = states[j.index()].provider else {
                    continue; // producer-served: the anchor needs no lease
                };
                if tick >= states[j.index()].lease_until {
                    // The deposition is caused by the freeze that set up
                    // the lease; re-activation re-parents the client's
                    // follow-on bids to the deposition marker.
                    let freeze_span = states[j.index()].freeze_span;
                    let dep_span = wire.mark(
                        "dist.deposition",
                        parent_or_root(freeze_span),
                        tick,
                        "deposed",
                        j,
                    );
                    let st = &mut states[j.index()];
                    st.phase = Phase::Active;
                    st.provider = None;
                    st.activated_at = tick;
                    st.activate_span = dep_span;
                    tally.depositions += 1;
                    tally.first_deposition.get_or_insert(tick);
                    if obs::enabled() {
                        obs::counter("dist.deposition").incr();
                    }
                } else if tick.saturating_sub(states[j.index()].last_ping) >= ping_every {
                    states[j.index()].last_ping = tick;
                    let freeze_span = states[j.index()].freeze_span;
                    wire.send(
                        tick,
                        j,
                        p,
                        1,
                        Message::Ping { from: j },
                        parent_or_root(freeze_span),
                    );
                }
            }
        }

        // Per-tick bidding for active clients, in id order.
        for j in net.clients() {
            if states[j.index()].phase != Phase::Active || dead[j.index()] {
                continue;
            }
            let view = &views[j.index()];
            states[j.index()].alpha += cfg.u_alpha;
            for idx in 0..view.members().len() {
                let cost = view.cost(idx);
                if !cost.is_finite() {
                    continue;
                }
                let st = &mut states[j.index()];
                let bid_parent = parent_or_root(st.activate_span);
                if st.alpha >= cost {
                    if st.tight_attempts[idx] == 0 {
                        st.tight_attempts[idx] = 1;
                        st.tight_next[idx] = tick + retry_delay(&cfg.liveness, j, idx, 1, 0x71);
                        wire.send(
                            tick,
                            j,
                            view.members()[idx],
                            view.hops(idx),
                            Message::Tight { from: j },
                            bid_parent,
                        );
                    } else if st.tight_attempts[idx] < cfg.liveness.retry_limit
                        && tick >= st.tight_next[idx]
                    {
                        st.tight_attempts[idx] += 1;
                        let attempt = st.tight_attempts[idx];
                        st.tight_next[idx] =
                            tick + retry_delay(&cfg.liveness, j, idx, attempt, 0x71);
                        tally.retries += 1;
                        if obs::enabled() {
                            obs::counter("dist.retry").incr();
                        }
                        let retry_span = wire.mark("dist.retry", bid_parent, tick, "retry", j);
                        wire.send(
                            tick,
                            j,
                            view.members()[idx],
                            view.hops(idx),
                            Message::Tight { from: j },
                            retry_span,
                        );
                    }
                }
                let st = &mut states[j.index()];
                if st.tight_attempts[idx] > 0 {
                    st.beta[idx] += cfg.u_beta;
                    st.gamma[idx] += cfg.u_gamma;
                    if st.gamma[idx] >= cost {
                        if st.span_attempts[idx] == 0 {
                            st.span_attempts[idx] = 1;
                            st.span_next[idx] = tick + retry_delay(&cfg.liveness, j, idx, 1, 0x53);
                            wire.send(
                                tick,
                                j,
                                view.members()[idx],
                                view.hops(idx),
                                Message::Span { from: j },
                                bid_parent,
                            );
                        } else if st.span_attempts[idx] < cfg.liveness.retry_limit
                            && tick >= st.span_next[idx]
                        {
                            st.span_attempts[idx] += 1;
                            let attempt = st.span_attempts[idx];
                            st.span_next[idx] =
                                tick + retry_delay(&cfg.liveness, j, idx, attempt, 0x53);
                            tally.retries += 1;
                            if obs::enabled() {
                                obs::counter("dist.retry").incr();
                            }
                            let retry_span = wire.mark("dist.retry", bid_parent, tick, "retry", j);
                            wire.send(
                                tick,
                                j,
                                view.members()[idx],
                                view.hops(idx),
                                Message::Span { from: j },
                                retry_span,
                            );
                        }
                    }
                }
            }
            // Fallback: no peer left worth waiting for. Under an active
            // partition the producer may be unreachable — settle as
            // explicitly degraded instead of pretending it can serve.
            if states[j.index()].alpha > cfg.give_up_factor * view.max_cost() + 1.0 {
                let reach = wire.chaos.reachable(tick, j, producer);
                let st = &mut states[j.index()];
                if reach {
                    st.phase = Phase::Frozen;
                    st.provider = None; // served by the producer directly
                    tally.fallbacks += 1;
                } else {
                    st.phase = Phase::Degraded;
                }
            }
        }

        // Election timeout: clients unsettled for too long settle
        // explicitly rather than spinning to the tick budget.
        if cfg.liveness.election_timeout > 0 {
            for j in net.clients() {
                if dead[j.index()] {
                    continue;
                }
                let ph = states[j.index()].phase;
                if ph != Phase::Active && ph != Phase::Idle {
                    continue;
                }
                if tick.saturating_sub(states[j.index()].activated_at)
                    < cfg.liveness.election_timeout
                {
                    continue;
                }
                tally.timeouts += 1;
                if obs::enabled() {
                    obs::counter("dist.election_timeout").incr();
                }
                let reach = wire.chaos.reachable(tick, j, producer);
                wire.mark(
                    "dist.timeout",
                    parent_or_root(states[j.index()].activate_span),
                    tick,
                    if reach { "fallback" } else { "degraded" },
                    j,
                );
                let st = &mut states[j.index()];
                if reach {
                    st.phase = Phase::Frozen;
                    st.provider = None;
                    tally.fallbacks += 1;
                } else {
                    st.phase = Phase::Degraded;
                }
            }
        }

        // Promotion checks (β accounting advances with time, not only
        // with message arrivals).
        for i in net.clients() {
            if !dead[i.index()] {
                let parent = parent_or_root(states[i.index()].activate_span);
                try_promote(
                    net,
                    cfg,
                    &mut states,
                    &mut wire,
                    &mut tally,
                    i,
                    tick,
                    parent,
                );
            }
        }

        // Tick-resolution telemetry (traced runs only): demand-queue
        // depth across nodes, in-flight messages, unsettled clients.
        if let Some(series) = &mut series {
            let queued: usize = states.iter().map(|s| s.requesters.len()).sum();
            let unsettled = net
                .clients()
                .filter(|&j| !dead[j.index()] && !states[j.index()].settled())
                .count();
            series.sample(tick, queued, wire.engine.pending(), unsettled);
        }

        // With leases on, a frozen client whose provider is currently
        // cut off by a partition is not really served — keep the round
        // alive so its lease can expire and depose the provider.
        let lease_on = cfg.liveness.lease_ticks > 0;
        if net.clients().all(|j| {
            if dead[j.index()] || !states[j.index()].settled() {
                return dead[j.index()];
            }
            if !lease_on {
                return true;
            }
            match states[j.index()].provider {
                Some(p) => wire.chaos.reachable(tick, j, p),
                None => true,
            }
        }) {
            break;
        }
    }

    // Anything still unsettled at the budget is served by the producer
    // when reachable, or reported as degraded when partitioned off.
    for j in net.clients() {
        if !dead[j.index()] && !states[j.index()].settled() {
            if wire.chaos.reachable(tick, j, producer) {
                states[j.index()].phase = Phase::Frozen;
                states[j.index()].provider = None;
                tally.fallbacks += 1;
            } else {
                states[j.index()].phase = Phase::Degraded;
            }
        }
    }

    #[cfg(feature = "strict-invariants")]
    strict_round_audit(net, &states, &dead, &wire.chaos);

    let admins: Vec<NodeId> = net
        .clients()
        .filter(|&i| states[i.index()].phase == Phase::Admin && !dead[i.index()])
        .collect();
    let degraded: Vec<NodeId> = net
        .clients()
        .filter(|&i| states[i.index()].phase == Phase::Degraded && !dead[i.index()])
        .collect();
    let stats = *wire.engine.stats();
    let faults = wire.chaos.stats;
    let protocol_errors = wire.engine.payload_misses();
    if wire.trace.is_some() {
        // Close the spans of messages still in flight at round end —
        // they will never arrive, so every trace terminates.
        for d in wire.engine.drain_pending() {
            obs::emit_span(
                message_span_name(d.msg.kind()),
                d.ctx,
                d.sent,
                tick,
                "expired",
                &[("to", obs::Value::from(d.to.index()))],
            );
        }
    }
    if let Some(tr) = &wire.trace {
        obs::emit_span(
            "dist.round",
            obs::TraceContext {
                trace: tr.trace,
                span: ROOT_SPAN,
                parent: 0,
            },
            0,
            tick,
            if tick < cfg.max_ticks {
                "settled"
            } else {
                "budget"
            },
            &[
                ("chunk", obs::Value::from(chunk.index())),
                ("admins", obs::Value::from(admins.len())),
                ("spans", obs::Value::from(tr.next_span - 1)),
            ],
        );
    }
    if let Some(series) = &series {
        series.emit();
    }
    if obs::enabled() {
        let mut fields = vec![
            ("chunk", obs::Value::from(chunk.index())),
            ("converged_tick", obs::Value::from(tick)),
            ("converged", obs::Value::from(tick < cfg.max_ticks)),
            ("admins", obs::Value::from(admins.len())),
            ("producer_fallbacks", obs::Value::from(tally.fallbacks)),
            ("dropped", obs::Value::from(stats.dropped)),
            ("deaths", obs::Value::from(tally.deaths_applied)),
            ("re_elections", obs::Value::from(tally.re_elections)),
            ("retries", obs::Value::from(tally.retries)),
            ("timeouts", obs::Value::from(tally.timeouts)),
            ("depositions", obs::Value::from(tally.depositions)),
            ("degraded", obs::Value::from(degraded.len())),
            ("chaos_faults", obs::Value::from(faults.total())),
        ];
        for (kind, n) in stats.per_kind() {
            fields.push((kind.label(), obs::Value::from(n)));
        }
        obs::event("dist.sim.converged", &fields);
        obs::gauge("dist.degraded_clients").set(degraded.len() as i64);
    }
    RoundOutcome {
        admins,
        stats,
        ticks: tick,
        producer_fallbacks: tally.fallbacks,
        deaths: tally.deaths_applied,
        re_elections: tally.re_elections,
        retries: tally.retries,
        timeouts: tally.timeouts,
        depositions: tally.depositions,
        first_deposition: tally.first_deposition,
        degraded,
        elections: tally.elections,
        faults,
        protocol_errors,
    }
}

/// Post-round oracle (strict-invariants builds only): every client must
/// have settled one way or another, no corpse may appear as a provider,
/// and degradation is only legal when the plan actually contains
/// partition windows.
// Node-count-sized arrays indexed by in-range NodeIds, as in the round
// body.
#[cfg(feature = "strict-invariants")]
#[allow(clippy::indexing_slicing)]
fn strict_round_audit(net: &Network, states: &[NodeState], dead: &[bool], chaos: &ChaosState) {
    for j in net.clients() {
        if dead[j.index()] {
            continue;
        }
        let st = &states[j.index()];
        assert!(
            st.settled(),
            "strict: client {j} left the round unsettled (phase {:?})",
            st.phase
        );
        if let Some(p) = st.provider {
            assert!(
                !dead[p.index()],
                "strict: client {j} is frozen on dead provider {p}"
            );
        }
        if st.phase == Phase::Degraded {
            assert!(
                chaos.has_partitions(),
                "strict: client {j} degraded without any partition window in the plan"
            );
        }
    }
}

/// Kills `node`: strikes it from every election tally and thaws every
/// client that was frozen on it as provider, sending them back to
/// bidding (the distributed analog of the world layer's orphan repair —
/// the thawed clients re-elect an ADMIN or fall back to the producer).
// `states`/`dead` are node-count-sized; `node` is bounds-checked by the
// caller before scheduling the death.
#[allow(clippy::indexing_slicing)]
fn apply_death(
    net: &Network,
    states: &mut [NodeState],
    dead: &mut [bool],
    node: NodeId,
    now: Tick,
    tally: &mut Tally,
) {
    dead[node.index()] = true;
    for j in net.clients() {
        if j == node || dead[j.index()] {
            continue;
        }
        let st = &mut states[j.index()];
        st.requesters.retain(|&(r, _)| r != node);
        st.span_from.retain(|&r| r != node);
        if st.phase == Phase::Frozen && st.provider == Some(node) {
            st.phase = Phase::Active;
            st.provider = None;
            st.activated_at = now;
            // Causally the re-bid starts a fresh arc: parent it on the
            // round root rather than the dead provider's freeze.
            st.activate_span = 0;
            tally.re_elections += 1;
        }
    }
}

// Per-node arrays are node-count-sized and member indices come from
// `LocalView::index_of`, which only returns in-bounds positions.
#[allow(clippy::too_many_arguments, clippy::indexing_slicing)]
fn handle_message(
    net: &Network,
    views: &[LocalView],
    cfg: &SimConfig,
    states: &mut [NodeState],
    wire: &mut Wire,
    dead: &[bool],
    tally: &mut Tally,
    to: NodeId,
    msg: Message,
    now: Tick,
    parent: u64,
) {
    let lease = cfg.liveness.lease_ticks;
    match msg {
        Message::Npi { .. } => {
            if states[to.index()].phase == Phase::Idle {
                states[to.index()].phase = Phase::Active;
                states[to.index()].activated_at = now;
                states[to.index()].activate_span = parent;
            }
        }
        Message::Tight { from } | Message::Span { from } => {
            let is_span = matches!(msg, Message::Span { .. });
            let phase = states[to.index()].phase;
            if !states[to.index()]
                .requesters
                .iter()
                .any(|&(r, _)| r == from)
            {
                states[to.index()].requesters.push((from, now));
            }
            match phase {
                Phase::Admin => {
                    // Producer or an elected admin: serve immediately.
                    wire.send(now, to, from, 1, Message::Freeze { provider: to }, parent);
                }
                Phase::Frozen if net.remaining(to) == 0 => {
                    // INACTIVE branch (Table I): a node that cannot cache
                    // anything points the requester at itself as a relay
                    // toward its own provider.
                    wire.send(now, to, from, 1, Message::Freeze { provider: to }, parent);
                }
                Phase::Frozen | Phase::Degraded => {
                    // A served node with spare storage stays quiet: its
                    // requesters keep bidding until an admin emerges or
                    // they fall back to the producer. Answering with a
                    // relay here would freeze the whole network before
                    // any election could gather SPAN support. Degraded
                    // nodes are out of the round entirely.
                }
                Phase::Active | Phase::Idle => {
                    if is_span {
                        if !states[to.index()].span_from.contains(&from) {
                            states[to.index()].span_from.push(from);
                        }
                        try_promote(net, cfg, states, wire, tally, to, now, parent);
                    }
                }
            }
        }
        Message::Freeze { provider } => {
            // A freeze naming an already-dead provider is stale news
            // from before the death; accepting it would strand the
            // client on a corpse.
            if dead[provider.index()] {
                return;
            }
            if states[to.index()].phase == Phase::Active || states[to.index()].phase == Phase::Idle
            {
                states[to.index()].freeze_on(provider, now, lease, parent);
            }
        }
        Message::NAdmin { admin } => {
            if dead[admin.index()] {
                return;
            }
            if states[to.index()].phase == Phase::Active || states[to.index()].phase == Phase::Idle
            {
                states[to.index()].freeze_on(admin, now, lease, parent);
                // Our pending requesters can reach the chunk through us.
                let requesters: Vec<NodeId> = states[to.index()]
                    .requesters
                    .iter()
                    .map(|&(r, _)| r)
                    .collect();
                for r in requesters {
                    wire.send(now, to, r, 1, Message::Freeze { provider: admin }, parent);
                }
            }
        }
        Message::BAdmin { admin } => {
            // Freeze only when we actually contributed resources toward
            // this admin (the paper's β_j > Con_j guard).
            if dead[admin.index()] {
                return;
            }
            let view = &views[to.index()];
            if states[to.index()].phase == Phase::Active {
                if let Some(idx) = view.index_of(admin) {
                    if states[to.index()].beta[idx] > 0.0 {
                        states[to.index()].freeze_on(admin, now, lease, parent);
                        let requesters: Vec<NodeId> = states[to.index()]
                            .requesters
                            .iter()
                            .map(|&(r, _)| r)
                            .collect();
                        for r in requesters {
                            wire.send(now, to, r, 1, Message::Freeze { provider: admin }, parent);
                        }
                    }
                }
            }
        }
        Message::Ping { from } => {
            // Only a node that still serves — an admin (the producer
            // included) or a full relay — renews its clients' leases.
            let phase = states[to.index()].phase;
            let serving =
                phase == Phase::Admin || (phase == Phase::Frozen && net.remaining(to) == 0);
            if serving {
                wire.send(now, to, from, 1, Message::Pong { provider: to }, parent);
            }
        }
        Message::Pong { provider } => {
            let st = &mut states[to.index()];
            if lease > 0 && st.phase == Phase::Frozen && st.provider == Some(provider) {
                st.lease_until = now + lease;
            }
        }
        Message::CollectContention { .. } | Message::ContentionReply { .. } => {
            // CC traffic is modeled by `view::build_views`.
        }
    }
}

/// Declares `i` ADMIN when it has storage, enough SPAN supporters, and
/// the observed resource contributions cover its fairness cost.
// Same bound proof as `handle_message`: node-count-sized arrays,
// view-validated member indices.
#[allow(clippy::too_many_arguments, clippy::indexing_slicing)]
fn try_promote(
    net: &Network,
    cfg: &SimConfig,
    states: &mut [NodeState],
    wire: &mut Wire,
    tally: &mut Tally,
    i: NodeId,
    now: Tick,
    parent: u64,
) {
    if states[i.index()].phase != Phase::Active && states[i.index()].phase != Phase::Idle {
        return;
    }
    if net.remaining(i) == 0 {
        return; // a full node never volunteers
    }
    if states[i.index()].span_from.len() < cfg.span_threshold {
        return;
    }
    // Collected β estimate: every requester bids U_β per tick since its
    // request arrived.
    let collected: f64 = states[i.index()]
        .requesters
        .iter()
        .map(|&(_, since)| cfg.u_beta * (now.saturating_sub(since)) as f64)
        .sum();
    let f_i = net.fairness_cost(i);
    if collected < f_i {
        return;
    }
    states[i.index()].phase = Phase::Admin;
    tally.elections.push((now, i));
    // The election marker is caused by the SPAN arrival (or bid tick)
    // that tipped the threshold; the announcements are its children.
    let election_span = wire.mark("dist.election", parent, now, "elected", i);
    let requesters: Vec<NodeId> = states[i.index()]
        .requesters
        .iter()
        .map(|&(r, _)| r)
        .collect();
    for r in &requesters {
        wire.send(now, i, *r, 1, Message::NAdmin { admin: i }, election_span);
    }
    for j in net.clients() {
        if j != i && !requesters.contains(&j) {
            wire.send(now, i, j, 1, Message::BAdmin { admin: i }, election_span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MessageKind;
    use crate::view::build_views;
    use peercache_core::workload::paper_grid;

    fn round(side: usize, k: u32, cfg: &SimConfig) -> RoundOutcome {
        let net = paper_grid(side).unwrap();
        let (views, _) = build_views(&net, k).unwrap();
        run_chunk_round(&net, &views, ChunkId::new(0), cfg)
    }

    #[test]
    fn round_terminates_and_elects_admins() {
        let out = round(6, 2, &SimConfig::default());
        assert!(out.ticks < SimConfig::default().max_ticks);
        assert!(!out.admins.is_empty(), "a 6x6 grid should elect caches");
        assert!(out.stats[MessageKind::Tight] > 0);
        assert!(out.stats[MessageKind::Span] > 0);
    }

    #[test]
    fn default_config_keeps_every_liveness_mechanism_inert() {
        // The liveness/chaos extensions must be strictly opt-in: a
        // default round sends no lease traffic, retries nothing, and
        // injects no chaos faults.
        let out = round(5, 2, &SimConfig::default());
        assert_eq!(out.retries, 0);
        assert_eq!(out.timeouts, 0);
        assert_eq!(out.depositions, 0);
        assert_eq!(out.first_deposition, None);
        assert!(out.degraded.is_empty());
        assert_eq!(out.faults, FaultStats::default());
        assert_eq!(out.protocol_errors, 0);
        assert_eq!(out.stats[MessageKind::Ping], 0);
        assert_eq!(out.stats[MessageKind::Pong], 0);
        // Elections are recorded and match the admin set.
        let mut elected: Vec<NodeId> = out.elections.iter().map(|&(_, n)| n).collect();
        elected.sort_unstable();
        assert_eq!(elected, out.admins);
    }

    #[test]
    fn producer_never_becomes_admin() {
        let net = paper_grid(4).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert!(!out.admins.contains(&net.producer()));
    }

    #[test]
    fn one_hop_scope_elects_fewer_admins_than_two_hop() {
        let k1 = round(6, 1, &SimConfig::default());
        let k2 = round(6, 2, &SimConfig::default());
        assert!(
            k1.admins.len() <= k2.admins.len(),
            "k=1 gave {} admins, k=2 gave {}",
            k1.admins.len(),
            k2.admins.len()
        );
    }

    #[test]
    fn huge_span_threshold_blocks_elections() {
        let cfg = SimConfig {
            span_threshold: 10_000,
            ..Default::default()
        };
        let out = round(4, 2, &cfg);
        assert!(out.admins.is_empty());
        // Everybody fell back to the producer but the round terminated.
        assert!(out.producer_fallbacks > 0);
    }

    #[test]
    fn full_nodes_never_volunteer() {
        let mut net = paper_grid(3).unwrap();
        // Fill every client completely.
        for j in net.clients().collect::<Vec<_>>() {
            for c in 0..net.capacity(j) {
                net.cache(j, ChunkId::new(100 + c)).unwrap();
            }
        }
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert!(out.admins.is_empty());
    }

    #[test]
    fn rounds_are_deterministic() {
        let a = round(5, 2, &SimConfig::default());
        let b = round(5, 2, &SimConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn survives_delivery_jitter() {
        let cfg = SimConfig {
            jitter: JitterConfig {
                max_extra_ticks: 4,
                seed: 9,
            },
            ..Default::default()
        };
        let out = round(5, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        // Jitter reorders elections but the protocol still caches.
        assert!(!out.admins.is_empty());
    }

    #[test]
    fn survives_heavy_message_loss() {
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.3,
                seed: 42,
            },
            ..Default::default()
        };
        let out = round(5, 2, &cfg);
        assert!(
            out.ticks < cfg.max_ticks,
            "lossy round must still terminate"
        );
        assert!(out.stats.dropped > 0);
    }

    #[test]
    fn loss_and_jitter_combined_still_converge_via_retransmission() {
        // Both fault injectors at once: 25% drops plus up to 3 ticks of
        // extra delay. NPI retransmission must still pull every client
        // into the round and the round must settle.
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.25,
                seed: 7,
            },
            jitter: JitterConfig {
                max_extra_ticks: 3,
                seed: 11,
            },
            ..Default::default()
        };
        let out = round(6, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        assert!(out.stats.dropped > 0, "25% loss must drop something");
        // Every client settled one way or the other.
        let net = paper_grid(6).unwrap();
        assert!(out.admins.len() + out.producer_fallbacks <= net.graph().node_count());
        assert!(
            !out.admins.is_empty() || out.producer_fallbacks > 0,
            "clients must settle on an admin or the producer"
        );
    }

    #[test]
    fn message_counts_stay_bounded_under_retransmission() {
        // TIGHT and SPAN are sent at most once per (client, candidate)
        // pair regardless of loss (retries are off by default), and NPI
        // retransmission is bounded by one broadcast per client per
        // retransmit interval.
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.3,
                seed: 5,
            },
            ..Default::default()
        };
        let net = paper_grid(5).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        let pair_bound: u64 = views.iter().map(|v| v.members().len() as u64).sum();
        assert!(out.stats[MessageKind::Tight] <= pair_bound);
        assert!(out.stats[MessageKind::Span] <= pair_bound);
        let clients = net.graph().node_count() as u64 - 1;
        let npi_bound = clients * (2 + out.ticks / NPI_RETRANSMIT_INTERVAL);
        assert!(
            out.stats[MessageKind::Npi] <= npi_bound,
            "NPI deliveries {} exceed retransmission bound {npi_bound}",
            out.stats[MessageKind::Npi]
        );
    }

    #[test]
    fn retries_recover_lost_bids_within_the_limit() {
        let liveness = LivenessConfig {
            retry_limit: 4,
            backoff_base: 4,
            backoff_jitter: 2,
            ..LivenessConfig::default()
        };
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.4,
                seed: 13,
            },
            liveness,
            ..Default::default()
        };
        let net = paper_grid(5).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        assert!(out.ticks < cfg.max_ticks);
        assert!(out.retries > 0, "40% loss must trigger retransmissions");
        // The retry limit still bounds total TIGHT/SPAN traffic.
        let pair_bound: u64 = views.iter().map(|v| v.members().len() as u64).sum();
        let limit = u64::from(liveness.retry_limit);
        assert!(out.stats[MessageKind::Tight] <= pair_bound * limit);
        assert!(out.stats[MessageKind::Span] <= pair_bound * limit);
    }

    #[test]
    fn leases_keep_quiet_on_healthy_rounds_but_ping_providers() {
        // With leases on and nothing failing, pings flow and nobody is
        // deposed.
        let cfg = SimConfig {
            liveness: LivenessConfig {
                lease_ticks: 12,
                ..LivenessConfig::default()
            },
            ..Default::default()
        };
        let out = round(6, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        assert_eq!(out.depositions, 0, "healthy providers keep their leases");
        assert!(!out.admins.is_empty());
    }

    #[test]
    fn partition_deposes_the_severed_admin_and_reelects() {
        // Learn who gets elected first and when, undisturbed; then cut
        // that admin off the tick its NADMIN freezes land (one hop
        // after the election). The lease must depose it within the
        // timeout and the surviving side must settle again (new
        // election or producer fallback).
        let net = paper_grid(6).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let baseline = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        let &(elected_at, victim) = baseline.elections.first().expect("baseline elects");
        let window_from = elected_at + 1;
        let lease = 24;
        let cfg = SimConfig {
            chaos: FaultPlan::new(17).partition(window_from, u64::MAX, vec![victim]),
            liveness: LivenessConfig {
                lease_ticks: lease,
                election_timeout: 400,
                ..LivenessConfig::default()
            },
            ..Default::default()
        };
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        assert!(out.ticks < cfg.max_ticks, "partitioned round must settle");
        assert!(
            out.depositions >= 1,
            "clients frozen on the severed admin must depose it"
        );
        let first = out.first_deposition.expect("a deposition happened");
        assert!(
            first <= window_from + 2 * lease,
            "deposition at {first} exceeds lease bound {}",
            window_from + 2 * lease
        );
        // The surviving component recovered: someone else got elected
        // after the cut, or the thawed clients fell back to the
        // producer.
        let recovered = out
            .elections
            .iter()
            .any(|&(t, n)| t > window_from && n != victim)
            || out.producer_fallbacks > 0;
        assert!(recovered, "surviving side must re-elect or fall back");
        assert!(out.faults.partition_drops > 0);
    }

    #[test]
    fn clients_cut_from_the_producer_degrade_explicitly() {
        // Node 0 is islanded for the whole round; with an election
        // timeout it must settle as degraded, not burn the tick budget.
        let victim = NodeId::new(0);
        let cfg = SimConfig {
            chaos: FaultPlan::new(3).partition(0, u64::MAX, vec![victim]),
            liveness: LivenessConfig {
                election_timeout: 60,
                ..LivenessConfig::default()
            },
            ..Default::default()
        };
        let out = round(4, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        assert!(out.degraded.contains(&victim));
        assert!(!out.admins.contains(&victim));
        assert!(out.timeouts >= 1);
    }

    #[test]
    fn duplication_and_reordering_do_not_break_elections() {
        // Receivers deduplicate requesters by identity, so duplicated
        // and reordered copies must not change the outcome class.
        let cfg = SimConfig {
            chaos: FaultPlan::new(21).duplicate(0.3).reorder(0.2, 3),
            ..Default::default()
        };
        let out = round(6, 2, &cfg);
        assert!(out.ticks < cfg.max_ticks);
        assert!(out.faults.duplicated > 0);
        assert!(out.faults.delayed > 0);
        assert!(!out.admins.is_empty() || out.producer_fallbacks > 0);
    }

    #[test]
    fn chaos_rounds_replay_byte_identically() {
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.1,
                seed: 2,
            },
            jitter: JitterConfig {
                max_extra_ticks: 2,
                seed: 6,
            },
            chaos: FaultPlan::new(40)
                .drop(0.05)
                .duplicate(0.1)
                .reorder(0.1, 2)
                .corrupt(0.02)
                .partition(30, 80, vec![NodeId::new(0), NodeId::new(1)])
                .flap(NodeId::new(2), NodeId::new(3), 16, 5)
                .grey(NodeId::new(7), 0.3)
                .death(25, NodeId::new(11)),
            liveness: LivenessConfig {
                retry_limit: 3,
                backoff_base: 4,
                backoff_jitter: 2,
                lease_ticks: 20,
                election_timeout: 300,
            },
            ..Default::default()
        };
        let a = round(5, 2, &cfg);
        let b = round(5, 2, &cfg);
        assert_eq!(a, b, "full chaos round must replay byte-identically");
        assert!(a.faults.total() > 0);
    }

    #[test]
    fn death_of_elected_admin_triggers_reelection() {
        // Run once undisturbed to learn who gets elected and when the
        // round settles, then replay with each elected admin dying at
        // each possible tick. Whatever the timing, the round must
        // settle and the corpse must stay out of the admin set; for
        // some (victim, tick) the admin's supporters are caught frozen
        // on it and must thaw back to bidding.
        let net = paper_grid(6).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let baseline = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert!(!baseline.admins.is_empty(), "baseline elects admins");
        let mut saw_reelection = false;
        for &victim in &baseline.admins {
            for t in 1..=baseline.ticks {
                let cfg = SimConfig {
                    deaths: vec![(t, victim)],
                    ..Default::default()
                };
                let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
                assert_eq!(out.deaths, 1);
                assert!(out.ticks < cfg.max_ticks, "churned round must settle");
                assert!(!out.admins.contains(&victim), "dead admins cannot cache");
                saw_reelection |= out.re_elections > 0;
            }
        }
        assert!(
            saw_reelection,
            "some death tick must catch clients frozen on an admin"
        );
    }

    #[test]
    fn dead_nodes_never_join_the_admin_set() {
        let net = paper_grid(5).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let victims = [NodeId::new(0), NodeId::new(24)];
        let cfg = SimConfig {
            deaths: vec![(1, victims[0]), (2, victims[1])],
            ..Default::default()
        };
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        assert_eq!(out.deaths, 2);
        assert!(out.ticks < cfg.max_ticks);
        for v in victims {
            assert!(!out.admins.contains(&v));
        }
    }

    #[test]
    fn producer_death_is_ignored() {
        let net = paper_grid(4).unwrap();
        let (views, _) = build_views(&net, 2).unwrap();
        let cfg = SimConfig {
            deaths: vec![(1, net.producer())],
            ..Default::default()
        };
        let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
        let undisturbed = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
        assert_eq!(out.deaths, 0);
        assert_eq!(out.admins, undisturbed.admins);
        assert_eq!(out.ticks, undisturbed.ticks);
    }

    #[test]
    fn churned_rounds_are_deterministic() {
        // Loss, jitter, and deaths together must still replay exactly.
        let cfg = SimConfig {
            loss: LossConfig {
                drop_probability: 0.2,
                seed: 3,
            },
            jitter: JitterConfig {
                max_extra_ticks: 2,
                seed: 4,
            },
            deaths: vec![(5, NodeId::new(3)), (40, NodeId::new(12))],
            ..Default::default()
        };
        let a = round(5, 2, &cfg);
        let b = round(5, 2, &cfg);
        assert_eq!(a, b);
    }
}
