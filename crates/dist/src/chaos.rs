//! Deterministic chaos harness: a seeded fault-injection plan for the
//! protocol simulator.
//!
//! [`FaultPlan`] is a declarative description of everything that can go
//! wrong on the wire — probabilistic drops, duplication, reordering,
//! payload corruption, timed partition windows, flapping links, grey
//! (half-deaf) nodes, and scheduled node deaths. [`ChaosState`] compiles
//! a plan into the mutable per-round machinery: a single seeded RNG
//! drawn in a fixed order per send, a tick-indexed death schedule, and
//! per-cause drop counters ([`FaultStats`]).
//!
//! Everything is deterministic for a given seed: the same plan over the
//! same network replays byte-identically, which is what lets the chaos
//! tests assert convergence-or-degradation *and* exact replay at once.
//! A default (empty) plan draws no random numbers at all, so legacy
//! runs are bit-for-bit unaffected by the harness being present.
//!
//! Scope notes, honest about the abstraction level:
//!
//! * Partition windows are node-set cuts: a message whose sender and
//!   receiver fall on opposite sides of an active window is dropped,
//!   whatever its hop count. Messages within one side are assumed to
//!   route within that side (the simulator does not model per-hop
//!   paths for control traffic).
//! * Flapping links affect direct exchanges between their two
//!   endpoints — the one-hop serve/freeze traffic they would carry —
//!   not multi-hop routes through them.
//! * Corrupted payloads are modeled as receiver-side discards (the
//!   checksum fails, the frame is dropped) and counted separately from
//!   plain chaos drops.

use peercache_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::Tick;

/// A timed network partition: during `from..until`, `island` is cut off
/// from the rest of the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First tick (inclusive) at which the cut is active.
    pub from: Tick,
    /// First tick at which the cut has healed (exclusive end).
    pub until: Tick,
    /// The nodes on the far side of the cut, in any order.
    pub island: Vec<NodeId>,
}

/// A link that goes down periodically: for every `period`-tick cycle,
/// the link is down for the first `down_for` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlappingLink {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Cycle length in ticks (must be > 0 to have any effect).
    pub period: Tick,
    /// Ticks per cycle the link spends down.
    pub down_for: Tick,
}

/// A node whose radio degrades: every message to or from it is dropped
/// with the given probability (grey failure — alive but unreliable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreyNode {
    /// The degraded node.
    pub node: NodeId,
    /// Per-message drop probability on its links.
    pub drop_probability: f64,
}

/// A declarative, seeded fault-injection plan.
///
/// The default plan injects nothing and draws no randomness. Builder
/// methods compose:
///
/// ```
/// use peercache_dist::chaos::FaultPlan;
/// use peercache_graph::NodeId;
///
/// let plan = FaultPlan::new(42)
///     .drop(0.1)
///     .duplicate(0.05)
///     .reorder(0.1, 3)
///     .partition(100, 200, vec![NodeId::new(0), NodeId::new(1)])
///     .flap(NodeId::new(2), NodeId::new(3), 16, 4)
///     .grey(NodeId::new(4), 0.5)
///     .death(50, NodeId::new(5));
/// assert!(!plan.is_noop());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic fault in the plan.
    pub seed: u64,
    /// Probability of silently dropping any message.
    pub drop: f64,
    /// Probability of delivering a message twice.
    pub duplicate: f64,
    /// Probability of delaying a message by a random 1..=`reorder_max_ticks`
    /// extra ticks (which reorders it past later traffic).
    pub reorder: f64,
    /// Maximum extra delay of a reordered message.
    pub reorder_max_ticks: u32,
    /// Probability a message arrives corrupted (and is discarded).
    pub corrupt: f64,
    /// Timed partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Periodically failing links.
    pub flaps: Vec<FlappingLink>,
    /// Nodes with degraded radios.
    pub grey: Vec<GreyNode>,
    /// Scheduled node deaths, merged with [`crate::sim::SimConfig::deaths`].
    pub deaths: Vec<(Tick, NodeId)>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the uniform message-drop probability.
    #[must_use]
    pub fn drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the duplication probability.
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the reorder probability and maximum extra delay.
    #[must_use]
    pub fn reorder(mut self, p: f64, max_extra_ticks: u32) -> Self {
        self.reorder = p;
        self.reorder_max_ticks = max_extra_ticks;
        self
    }

    /// Sets the corruption probability.
    #[must_use]
    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Adds a partition window cutting `island` off during `from..until`.
    #[must_use]
    pub fn partition(mut self, from: Tick, until: Tick, island: Vec<NodeId>) -> Self {
        self.partitions.push(PartitionWindow {
            from,
            until,
            island,
        });
        self
    }

    /// Adds a flapping link.
    #[must_use]
    pub fn flap(mut self, a: NodeId, b: NodeId, period: Tick, down_for: Tick) -> Self {
        self.flaps.push(FlappingLink {
            a,
            b,
            period,
            down_for,
        });
        self
    }

    /// Marks a node's radio as degraded.
    #[must_use]
    pub fn grey(mut self, node: NodeId, drop_probability: f64) -> Self {
        self.grey.push(GreyNode {
            node,
            drop_probability,
        });
        self
    }

    /// Schedules a node death.
    #[must_use]
    pub fn death(mut self, at: Tick, node: NodeId) -> Self {
        self.deaths.push((at, node));
        self
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        !(self.drop > 0.0 || self.duplicate > 0.0 || self.reorder > 0.0 || self.corrupt > 0.0)
            && self.partitions.is_empty()
            && self.flaps.is_empty()
            && self.grey.is_empty()
            && self.deaths.is_empty()
    }

    /// `true` when any fault in the plan needs random draws.
    fn needs_rng(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.reorder > 0.0
            || self.corrupt > 0.0
            || self.grey.iter().any(|g| g.drop_probability > 0.0)
    }
}

/// Why the chaos layer dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Sender and receiver were on opposite sides of an active
    /// partition window.
    Partition,
    /// The message used a flapping link during its down phase.
    Flap,
    /// A grey endpoint's radio lost it.
    Grey,
    /// The payload arrived corrupted and was discarded.
    Corrupt,
    /// Plain probabilistic loss.
    Chaos,
}

impl DropCause {
    /// Trace label for the fate of a dropped message, e.g.
    /// `dropped:partition`.
    pub const fn label(self) -> &'static str {
        match self {
            DropCause::Partition => "dropped:partition",
            DropCause::Flap => "dropped:flap",
            DropCause::Grey => "dropped:grey",
            DropCause::Corrupt => "dropped:corrupt",
            DropCause::Chaos => "dropped:chaos",
        }
    }
}

/// The fate of one message after the chaos layer ruled on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver the message (`copies` > 1 means duplication), after
    /// `extra_delay` additional ticks of reordering delay.
    Deliver {
        /// Extra ticks of delay beyond the hop distance.
        extra_delay: u32,
        /// How many copies to enqueue (1 normally, 2 when duplicated).
        copies: u8,
    },
    /// Drop the message, for the given reason.
    Dropped(DropCause),
}

/// Per-cause fault counters for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages cut by partition windows.
    pub partition_drops: u64,
    /// Messages lost to flapping links.
    pub flap_drops: u64,
    /// Messages lost to grey nodes.
    pub grey_drops: u64,
    /// Messages discarded as corrupted.
    pub corrupted: u64,
    /// Messages lost to plain probabilistic chaos drops.
    pub chaos_drops: u64,
    /// Messages duplicated in flight.
    pub duplicated: u64,
    /// Messages delayed (reordered) in flight.
    pub delayed: u64,
}

impl FaultStats {
    /// Total messages the chaos layer dropped, over every cause.
    pub fn total_drops(&self) -> u64 {
        self.partition_drops + self.flap_drops + self.grey_drops + self.corrupted + self.chaos_drops
    }

    /// Total fault injections: drops plus duplications plus delays.
    pub fn total(&self) -> u64 {
        self.total_drops() + self.duplicated + self.delayed
    }
}

/// A [`FaultPlan`] compiled for one protocol round: sorted islands, a
/// tick-indexed death schedule, the seeded RNG, and live counters.
#[derive(Debug)]
pub struct ChaosState {
    partitions: Vec<PartitionWindow>,
    flaps: Vec<FlappingLink>,
    grey: Vec<GreyNode>,
    /// All deaths (plan + extra), sorted by `(tick, node)`.
    deaths: Vec<(Tick, NodeId)>,
    death_cursor: usize,
    rng: Option<ChaCha8Rng>,
    drop: f64,
    duplicate: f64,
    reorder: f64,
    reorder_max_ticks: u32,
    corrupt: f64,
    /// Per-cause counters, incremented as the round runs.
    pub stats: FaultStats,
}

impl ChaosState {
    /// Compiles `plan` plus `extra_deaths` (the legacy
    /// [`crate::sim::SimConfig::deaths`] list) into round-ready state.
    pub fn compile(plan: &FaultPlan, extra_deaths: &[(Tick, NodeId)]) -> Self {
        let mut partitions = plan.partitions.clone();
        for w in &mut partitions {
            w.island.sort_unstable();
            w.island.dedup();
        }
        let mut deaths: Vec<(Tick, NodeId)> = plan
            .deaths
            .iter()
            .chain(extra_deaths.iter())
            .copied()
            .collect();
        deaths.sort_unstable_by_key(|&(t, n)| (t, n));
        // A node dies exactly once: when both the plan and the legacy
        // list schedule it (or one tick lists it twice), only the
        // earliest entry survives. `deaths_due` batches therefore never
        // double-report a node, which is what lets simultaneous deaths
        // at one tick be counted per *node* by the ≤R−1 durability
        // oracle — and what spares every consumer the re-death guard
        // the simulator used to need.
        let mut seen = std::collections::BTreeSet::new();
        deaths.retain(|&(_, n)| seen.insert(n));
        let rng = if plan.needs_rng() {
            Some(ChaCha8Rng::seed_from_u64(plan.seed))
        } else {
            None
        };
        ChaosState {
            partitions,
            flaps: plan.flaps.clone(),
            grey: plan.grey.clone(),
            deaths,
            death_cursor: 0,
            rng,
            drop: plan.drop,
            duplicate: plan.duplicate,
            reorder: plan.reorder,
            reorder_max_ticks: plan.reorder_max_ticks,
            corrupt: plan.corrupt,
            stats: FaultStats::default(),
        }
    }

    /// Deaths scheduled at or before `now` that have not been returned
    /// yet. Call once per tick with a monotone `now`; the schedule is
    /// pre-sorted, so each call is O(deaths due now), not O(all deaths).
    pub fn deaths_due(&mut self, now: Tick) -> &[(Tick, NodeId)] {
        let start = self.death_cursor;
        while self
            .deaths
            .get(self.death_cursor)
            .is_some_and(|&(t, _)| t <= now)
        {
            self.death_cursor += 1;
        }
        self.deaths.get(start..self.death_cursor).unwrap_or(&[])
    }

    /// `true` when the compiled plan contains any partition window
    /// (active or not).
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// `true` when no active partition window at `now` separates `a`
    /// from `b`.
    pub fn reachable(&self, now: Tick, a: NodeId, b: NodeId) -> bool {
        !self.partitions.iter().any(|w| {
            w.from <= now
                && now < w.until
                && (w.island.binary_search(&a).is_ok() != w.island.binary_search(&b).is_ok())
        })
    }

    /// Rules on one message: dropped (and for what cause), or delivered
    /// with possible duplication / extra reordering delay.
    ///
    /// The probabilistic checks run in a fixed order (corrupt, drop,
    /// duplicate, reorder) and each draws from the RNG only when its
    /// probability is positive, so enabling one fault never perturbs
    /// another's random stream.
    pub fn on_send(&mut self, now: Tick, from: NodeId, to: NodeId, _hops: u32) -> SendFate {
        if !self.reachable(now, from, to) {
            self.stats.partition_drops += 1;
            return SendFate::Dropped(DropCause::Partition);
        }
        for f in &self.flaps {
            let on_link = (f.a == from && f.b == to) || (f.a == to && f.b == from);
            if on_link && f.period > 0 && now % f.period < f.down_for {
                self.stats.flap_drops += 1;
                return SendFate::Dropped(DropCause::Flap);
            }
        }
        for g in &self.grey {
            if (g.node == from || g.node == to) && g.drop_probability > 0.0 {
                let lost = self
                    .rng
                    .as_mut()
                    .is_some_and(|r| r.gen::<f64>() < g.drop_probability);
                if lost {
                    self.stats.grey_drops += 1;
                    return SendFate::Dropped(DropCause::Grey);
                }
            }
        }
        if self.corrupt > 0.0 {
            let hit = self
                .rng
                .as_mut()
                .is_some_and(|r| r.gen::<f64>() < self.corrupt);
            if hit {
                self.stats.corrupted += 1;
                return SendFate::Dropped(DropCause::Corrupt);
            }
        }
        if self.drop > 0.0 {
            let hit = self
                .rng
                .as_mut()
                .is_some_and(|r| r.gen::<f64>() < self.drop);
            if hit {
                self.stats.chaos_drops += 1;
                return SendFate::Dropped(DropCause::Chaos);
            }
        }
        let mut copies = 1u8;
        if self.duplicate > 0.0 {
            let hit = self
                .rng
                .as_mut()
                .is_some_and(|r| r.gen::<f64>() < self.duplicate);
            if hit {
                copies = 2;
                self.stats.duplicated += 1;
            }
        }
        let mut extra_delay = 0u32;
        if self.reorder > 0.0 {
            let hit = self
                .rng
                .as_mut()
                .is_some_and(|r| r.gen::<f64>() < self.reorder);
            if hit {
                let max = self.reorder_max_ticks.max(1);
                extra_delay = match self.rng.as_mut() {
                    Some(r) => r.gen_range(1..=max),
                    None => 1,
                };
                self.stats.delayed += 1;
            }
        }
        SendFate::Deliver {
            extra_delay,
            copies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn default_plan_is_a_noop_without_randomness() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        let mut state = ChaosState::compile(&plan, &[]);
        for t in 0..100 {
            assert_eq!(
                state.on_send(t, n(0), n(1), 1),
                SendFate::Deliver {
                    extra_delay: 0,
                    copies: 1
                }
            );
        }
        assert_eq!(state.stats, FaultStats::default());
        assert!(state.deaths_due(1_000).is_empty());
    }

    #[test]
    fn partition_window_cuts_cross_island_traffic_only() {
        let plan = FaultPlan::new(1).partition(10, 20, vec![n(0), n(1)]);
        let mut state = ChaosState::compile(&plan, &[]);
        // Before the window: everything flows.
        assert!(matches!(
            state.on_send(9, n(0), n(5), 2),
            SendFate::Deliver { .. }
        ));
        // During: cross-cut traffic dies both ways, intra-island lives.
        assert_eq!(
            state.on_send(10, n(0), n(5), 2),
            SendFate::Dropped(DropCause::Partition)
        );
        assert_eq!(
            state.on_send(15, n(5), n(1), 2),
            SendFate::Dropped(DropCause::Partition)
        );
        assert!(matches!(
            state.on_send(15, n(0), n(1), 1),
            SendFate::Deliver { .. }
        ));
        assert!(matches!(
            state.on_send(15, n(5), n(6), 1),
            SendFate::Deliver { .. }
        ));
        // After: healed.
        assert!(matches!(
            state.on_send(20, n(0), n(5), 2),
            SendFate::Deliver { .. }
        ));
        assert_eq!(state.stats.partition_drops, 2);
        assert!(!state.reachable(15, n(0), n(5)));
        assert!(state.reachable(15, n(0), n(1)));
        assert!(state.reachable(20, n(0), n(5)));
    }

    #[test]
    fn flapping_link_cycles_down_and_up() {
        let plan = FaultPlan::new(1).flap(n(2), n(3), 10, 4);
        let mut state = ChaosState::compile(&plan, &[]);
        // Ticks 0..4 of each cycle: down (both directions).
        assert_eq!(
            state.on_send(0, n(2), n(3), 1),
            SendFate::Dropped(DropCause::Flap)
        );
        assert_eq!(
            state.on_send(13, n(3), n(2), 1),
            SendFate::Dropped(DropCause::Flap)
        );
        // Ticks 4..10: up.
        assert!(matches!(
            state.on_send(4, n(2), n(3), 1),
            SendFate::Deliver { .. }
        ));
        // Other links unaffected even during the down phase.
        assert!(matches!(
            state.on_send(0, n(2), n(4), 1),
            SendFate::Deliver { .. }
        ));
        assert_eq!(state.stats.flap_drops, 2);
    }

    #[test]
    fn grey_node_loses_a_fraction_of_its_traffic() {
        let plan = FaultPlan::new(7).grey(n(4), 0.5);
        let mut state = ChaosState::compile(&plan, &[]);
        let mut lost = 0u64;
        for t in 0..200 {
            if matches!(state.on_send(t, n(4), n(5), 1), SendFate::Dropped(_)) {
                lost += 1;
            }
        }
        assert!(lost > 50 && lost < 150, "~50% expected, got {lost}");
        assert_eq!(state.stats.grey_drops, lost);
        // Traffic not touching the grey node is never grey-dropped.
        for t in 0..50 {
            assert!(matches!(
                state.on_send(t, n(1), n(2), 1),
                SendFate::Deliver { .. }
            ));
        }
    }

    #[test]
    fn probabilistic_faults_replay_identically() {
        let plan = FaultPlan::new(99)
            .drop(0.2)
            .duplicate(0.1)
            .reorder(0.15, 3)
            .corrupt(0.05);
        let run = || {
            let mut state = ChaosState::compile(&plan, &[]);
            let fates: Vec<SendFate> = (0..500).map(|t| state.on_send(t, n(0), n(1), 1)).collect();
            (fates, state.stats)
        };
        let (fates_a, stats_a) = run();
        let (fates_b, stats_b) = run();
        assert_eq!(fates_a, fates_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.chaos_drops > 0);
        assert!(stats_a.duplicated > 0);
        assert!(stats_a.delayed > 0);
        assert!(stats_a.corrupted > 0);
        assert_eq!(
            stats_a.total(),
            stats_a.chaos_drops + stats_a.corrupted + stats_a.duplicated + stats_a.delayed
        );
    }

    #[test]
    fn death_schedule_is_tick_indexed_and_merged() {
        let plan = FaultPlan::new(0).death(30, n(2)).death(10, n(1));
        let mut state = ChaosState::compile(&plan, &[(10, n(0)), (50, n(3))]);
        assert!(state.deaths_due(5).is_empty());
        // Tick 10: both tick-10 deaths, in node order.
        assert_eq!(state.deaths_due(10), &[(10, n(0)), (10, n(1))]);
        // Already-returned deaths never repeat.
        assert!(state.deaths_due(10).is_empty());
        assert_eq!(state.deaths_due(40), &[(30, n(2))]);
        assert_eq!(state.deaths_due(60), &[(50, n(3))]);
        assert!(state.deaths_due(1_000).is_empty());
    }

    #[test]
    fn duplicate_death_entries_collapse_to_the_earliest() {
        // Node 1 is scheduled twice at one tick (plan + legacy list)
        // and node 2 at two different ticks: one death each survives.
        let plan = FaultPlan::new(0).death(10, n(1)).death(30, n(2));
        let mut state = ChaosState::compile(&plan, &[(10, n(1)), (10, n(4)), (45, n(2))]);
        assert_eq!(state.deaths_due(10), &[(10, n(1)), (10, n(4))]);
        assert_eq!(state.deaths_due(50), &[(30, n(2))]);
        assert!(state.deaths_due(1_000).is_empty());
    }

    #[test]
    fn simultaneous_deaths_arrive_as_one_batch_per_tick() {
        // The ≤R−1 durability oracle kills several nodes at one tick;
        // the cursor must hand them all over in a single node-ordered
        // batch, never spread across later calls.
        let plan = FaultPlan::new(0)
            .death(20, n(3))
            .death(20, n(1))
            .death(20, n(2));
        let mut state = ChaosState::compile(&plan, &[]);
        assert!(state.deaths_due(19).is_empty());
        assert_eq!(state.deaths_due(20), &[(20, n(1)), (20, n(2)), (20, n(3))]);
        assert!(state.deaths_due(20).is_empty());
    }

    #[test]
    fn death_dedup_never_perturbs_the_seeded_rng_stream() {
        // Exactly the perf-gate chaos fields (`chaos_cells`): seed
        // 0xFA117, duplicate + reorder at intensity 0.4, a tick-10
        // partition window. Deaths draw no randomness, so scheduling
        // duplicates must leave every fate and counter bit-identical —
        // this pins the RNG draw order across the dedup change.
        let base = FaultPlan::new(0xFA117)
            .duplicate(0.2)
            .reorder(0.2, 2)
            .partition(10, 90, vec![n(0)]);
        let run = |plan: &FaultPlan, extra: &[(Tick, NodeId)]| {
            let mut state = ChaosState::compile(plan, extra);
            let fates: Vec<SendFate> = (0..400).map(|t| state.on_send(t, n(1), n(2), 1)).collect();
            let mut deaths = Vec::new();
            for t in 0..400 {
                deaths.extend_from_slice(state.deaths_due(t));
            }
            (fates, state.stats, deaths)
        };
        let clean = run(&base, &[]);
        let dup_plan = base.clone().death(25, n(5)).death(25, n(5));
        let (fates, stats, deaths) = run(&dup_plan, &[(25, n(5)), (120, n(5))]);
        assert_eq!(fates, clean.0);
        assert_eq!(stats, clean.1);
        assert_eq!(deaths, vec![(25, n(5))]);
        assert!(stats.duplicated > 0 && stats.delayed > 0);
    }

    #[test]
    fn reorder_delay_is_bounded() {
        let plan = FaultPlan::new(3).reorder(1.0, 4);
        let mut state = ChaosState::compile(&plan, &[]);
        for t in 0..100 {
            match state.on_send(t, n(0), n(1), 1) {
                SendFate::Deliver { extra_delay, .. } => {
                    assert!((1..=4).contains(&extra_delay));
                }
                SendFate::Dropped(c) => panic!("reorder-only plan dropped a message: {c:?}"),
            }
        }
        assert_eq!(state.stats.delayed, 100);
    }
}
