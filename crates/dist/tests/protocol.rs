//! Protocol-level integration tests: Algorithm 2 under faults, across
//! topologies, against its §IV-D analysis.

use peercache_core::planner::CachePlanner;
use peercache_core::workload::{paper_grid, paper_random, ScenarioBuilder, Topology};
use peercache_core::ChunkId;
use peercache_dist::engine::{JitterConfig, LossConfig};
use peercache_dist::protocol::MessageKind;
use peercache_dist::sim::{run_chunk_round, SimConfig};
use peercache_dist::view::build_views;
use peercache_dist::{DistributedConfig, DistributedPlanner};

#[test]
fn works_on_random_topologies() {
    for seed in [3u64, 7, 21] {
        let mut net = paper_random(40, seed).unwrap();
        let planner = DistributedPlanner::default();
        let placement = planner.plan(&mut net, 4).unwrap();
        assert_eq!(placement.chunks().len(), 4);
        let report = planner.last_report();
        assert!(report.ticks_per_chunk.iter().all(|&t| t < 100_000));
    }
}

#[test]
fn loss_sweep_degrades_gracefully() {
    // Rising loss may cost efficiency but never correctness or
    // termination.
    let mut costs = Vec::new();
    for loss in [0.0f64, 0.1, 0.3, 0.5] {
        let mut net = paper_grid(5).unwrap();
        let planner = DistributedPlanner::with_loss(LossConfig {
            drop_probability: loss,
            seed: 11,
        });
        let placement = planner.plan(&mut net, 3).unwrap();
        assert_eq!(placement.chunks().len(), 3);
        for n in net.graph().nodes() {
            assert!(net.used(n) <= net.capacity(n));
        }
        costs.push(placement.total_contention_cost());
    }
    // Sanity: every run produced a finite, positive cost.
    assert!(costs.iter().all(|c| c.is_finite() && *c > 0.0));
}

#[test]
fn jitter_and_loss_combined_still_converge() {
    let mut config = DistributedConfig::default();
    config.sim.loss = LossConfig {
        drop_probability: 0.2,
        seed: 5,
    };
    config.sim.jitter = JitterConfig {
        max_extra_ticks: 3,
        seed: 6,
    };
    let mut net = paper_grid(5).unwrap();
    let planner = DistributedPlanner::new(config);
    let placement = planner.plan(&mut net, 3).unwrap();
    assert_eq!(placement.chunks().len(), 3);
    let report = planner.last_report();
    assert!(report.messages.dropped > 0);
}

#[test]
fn message_counts_scale_like_the_analysis() {
    // §IV-D: O(QN + N^2). Doubling the node count should grow traffic
    // at most ~quadratically (with slack for the CC constant).
    let traffic = |side: usize| {
        let mut net = paper_grid(side).unwrap();
        let planner = DistributedPlanner::default();
        planner.plan(&mut net, 3).unwrap();
        planner.last_report().messages.total() as f64
    };
    let small = traffic(4);
    let big = traffic(8);
    let node_ratio = (64.0f64 / 16.0).powi(2); // N^2 growth
    assert!(
        big / small < node_ratio * 2.0,
        "traffic grew faster than O(N^2): {small} -> {big}"
    );
}

#[test]
fn elected_admins_respect_remaining_capacity() {
    // Capacity 1: after one round a node is full and must never be
    // re-elected.
    let mut net = ScenarioBuilder::new(Topology::Grid { rows: 4, cols: 4 })
        .capacity(1)
        .producer(5)
        .build()
        .unwrap();
    let planner = DistributedPlanner::default();
    let placement = planner.plan(&mut net, 4).unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for cp in placement.chunks() {
        for &c in &cp.caches {
            assert!(seen.insert(c), "node {c} elected twice at capacity 1");
        }
    }
}

#[test]
fn single_round_outcome_is_consistent_with_views() {
    let net = paper_grid(5).unwrap();
    let (views, cc) = build_views(&net, 2).unwrap();
    assert!(cc[MessageKind::Cc] > 0);
    let out = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
    // Admins are clients, unique, and within the node range.
    let mut admins = out.admins.clone();
    admins.dedup();
    assert_eq!(admins.len(), out.admins.len());
    for a in &out.admins {
        assert!(a.index() < net.node_count());
        assert_ne!(*a, net.producer());
    }
    // Every tick accounted: stats non-trivial when admins were elected.
    if !out.admins.is_empty() {
        assert!(out.stats[MessageKind::NAdmin] > 0 || out.stats[MessageKind::BAdmin] > 0);
    }
}
