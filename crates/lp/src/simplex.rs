//! Dense two-phase primal simplex.
//!
//! General bounds are normalized away first (shift / flip / split), so
//! the tableau only ever sees `x >= 0` variables plus explicit
//! upper-bound rows. Phase 1 minimizes artificial infeasibility; phase 2
//! optimizes the real objective with artificial columns barred from
//! entering. Bland's rule guarantees termination on degenerate inputs.

// Index loops below walk several parallel arrays at once; iterator
// chains would obscure the lockstep structure.
#![allow(clippy::needless_range_loop)]

use crate::model::{Constraint, Model, Relation, Sense, VarId};
use crate::LpError;

const EPS: f64 = 1e-9;
const MAX_ITERATIONS: usize = 500_000;

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Objective value at the optimum, in the model's original sense.
    pub objective: f64,
    pub(crate) values: Vec<f64>,
}

impl LpSolution {
    /// Value of a variable at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// How each original variable maps onto nonnegative tableau columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = x' + lower`, plus an upper-bound row when `upper` is finite.
    Shift { col: usize, lower: f64 },
    /// `x = upper - x'` (used when only the upper bound is finite).
    Flip { col: usize, upper: f64 },
    /// `x = x⁺ - x⁻` (free variable).
    Split { pos: usize, neg: usize },
}

/// Solves the LP relaxation of `model` (integrality flags are ignored).
///
/// # Errors
///
/// * [`LpError::Infeasible`] / [`LpError::Unbounded`] for the usual
///   outcomes.
/// * [`LpError::InvalidModel`] if [`Model::validate`] fails.
/// * [`LpError::IterationLimit`] on pathological numerical inputs.
///
/// # Example
///
/// ```
/// use peercache_lp::{Model, Relation, Sense};
///
/// // minimize x + y  s.t.  x + 2y >= 3, 3x + y >= 4
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
/// let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
/// m.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Ge, 3.0);
/// m.add_constraint(vec![(x, 3.0), (y, 1.0)], Relation::Ge, 4.0);
/// let sol = peercache_lp::solve_lp(&m)?;
/// assert!((sol.objective - 2.0).abs() < 1e-6);
/// # Ok::<(), peercache_lp::LpError>(())
/// ```
pub fn solve_lp(model: &Model) -> Result<LpSolution, LpError> {
    model.validate()?;
    let n = model.var_count();

    // --- Normalize variables to x' >= 0. ---
    let mut maps = Vec::with_capacity(n);
    let mut cols = 0usize;
    let lower = model.lower_bounds();
    let upper = model.upper_bounds();
    for i in 0..n {
        let map = if lower[i].is_finite() {
            let m = VarMap::Shift {
                col: cols,
                lower: lower[i],
            };
            cols += 1;
            m
        } else if upper[i].is_finite() {
            let m = VarMap::Flip {
                col: cols,
                upper: upper[i],
            };
            cols += 1;
            m
        } else {
            let m = VarMap::Split {
                pos: cols,
                neg: cols + 1,
            };
            cols += 2;
            m
        };
        maps.push(map);
    }

    // --- Assemble rows: original constraints + finite-range bound rows. ---
    struct Row {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut push_constraint = |c: &Constraint| {
        let mut coeffs = vec![0.0; cols];
        let mut rhs = c.rhs;
        for &(v, coeff) in &c.terms {
            match maps[v.index()] {
                VarMap::Shift { col, lower } => {
                    coeffs[col] += coeff;
                    rhs -= coeff * lower;
                }
                VarMap::Flip { col, upper } => {
                    coeffs[col] -= coeff;
                    rhs -= coeff * upper;
                }
                VarMap::Split { pos, neg } => {
                    coeffs[pos] += coeff;
                    coeffs[neg] -= coeff;
                }
            }
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs,
        });
    };
    for c in model.constraints() {
        push_constraint(c);
    }
    for i in 0..n {
        if let VarMap::Shift { col, lower } = maps[i] {
            if upper[i].is_finite() && upper[i] - lower > 0.0 {
                let mut coeffs = vec![0.0; cols];
                coeffs[col] = 1.0;
                rows.push(Row {
                    coeffs,
                    relation: Relation::Le,
                    rhs: upper[i] - lower,
                });
            } else if upper[i].is_finite() {
                // Fixed variable: x' == 0; row forces it explicitly.
                let mut coeffs = vec![0.0; cols];
                coeffs[col] = 1.0;
                rows.push(Row {
                    coeffs,
                    relation: Relation::Eq,
                    rhs: 0.0,
                });
            }
        }
    }

    // --- Transformed objective (phase 2), constants dropped. ---
    let mut c_struct = vec![0.0; cols];
    for i in 0..n {
        let coeff = model.objective_coeffs()[i];
        match maps[i] {
            VarMap::Shift { col, .. } => c_struct[col] += coeff,
            VarMap::Flip { col, .. } => c_struct[col] -= coeff,
            VarMap::Split { pos, neg } => {
                c_struct[pos] += coeff;
                c_struct[neg] -= coeff;
            }
        }
    }
    if model.sense() == Sense::Maximize {
        for c in &mut c_struct {
            *c = -*c;
        }
    }

    // --- Build the tableau with slacks/artificials. ---
    let m_rows = rows.len();
    let mut num_slack = 0usize;
    let mut num_artificial = 0usize;
    for row in &mut rows {
        if row.rhs < 0.0 {
            for c in &mut row.coeffs {
                *c = -*c;
            }
            row.rhs = -row.rhs;
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        match row.relation {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_artificial += 1;
            }
            Relation::Eq => num_artificial += 1,
        }
    }
    let total = cols + num_slack + num_artificial;
    let art_start = cols + num_slack;
    let mut a = vec![vec![0.0; total]; m_rows];
    let mut b = vec![0.0; m_rows];
    let mut basis = vec![usize::MAX; m_rows];
    let mut slack_idx = cols;
    let mut art_idx = art_start;
    for (r, row) in rows.iter().enumerate() {
        a[r][..cols].copy_from_slice(&row.coeffs);
        b[r] = row.rhs;
        match row.relation {
            Relation::Le => {
                a[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[r][slack_idx] = -1.0;
                slack_idx += 1;
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    // --- Phase 1. ---
    if num_artificial > 0 {
        let mut c1 = vec![0.0; total];
        for j in art_start..total {
            c1[j] = 1.0;
        }
        let obj = run_simplex(&mut a, &mut b, &mut basis, &c1, total)?;
        if obj > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Pivot remaining artificial basics out where possible.
        for r in 0..m_rows {
            if basis[r] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| a[r][j].abs() > EPS) {
                    pivot(&mut a, &mut b, &mut basis, r, j);
                }
            }
        }
    }

    // --- Phase 2 (artificials barred by the `limit` argument). ---
    let mut c2 = vec![0.0; total];
    c2[..cols].copy_from_slice(&c_struct);
    run_simplex(&mut a, &mut b, &mut basis, &c2, art_start)?;

    // --- Extract the solution. ---
    let mut xprime = vec![0.0; total];
    for r in 0..m_rows {
        xprime[basis[r]] = b[r];
    }
    let mut values = vec![0.0; n];
    for i in 0..n {
        values[i] = match maps[i] {
            VarMap::Shift { col, lower } => xprime[col] + lower,
            VarMap::Flip { col, upper } => upper - xprime[col],
            VarMap::Split { pos, neg } => xprime[pos] - xprime[neg],
        };
    }
    let objective = model.objective_value(&values);
    Ok(LpSolution { objective, values })
}

/// Runs the simplex loop on the current tableau; columns `>= limit`
/// may not enter the basis. Returns the phase objective value.
fn run_simplex(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    basis: &mut [usize],
    c: &[f64],
    limit: usize,
) -> Result<f64, LpError> {
    let m = a.len();
    for _ in 0..MAX_ITERATIONS {
        // Reduced costs r_j = c_j - c_B B^{-1} A_j; Bland entering rule.
        let mut entering = None;
        for j in 0..limit {
            let mut rj = c[j];
            for i in 0..m {
                let cb = c[basis[i]];
                if cb != 0.0 {
                    rj -= cb * a[i][j];
                }
            }
            if rj < -1e-7 {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            let obj: f64 = (0..m).map(|i| c[basis[i]] * b[i]).sum();
            return Ok(obj);
        };
        // Ratio test with Bland tie-breaking on the leaving basic index.
        let mut leave: Option<(f64, usize)> = None;
        for i in 0..m {
            if a[i][j] > EPS {
                let ratio = b[i] / a[i][j];
                let better = match leave {
                    None => true,
                    Some((best, row)) => {
                        ratio < best - EPS || (ratio < best + EPS && basis[i] < basis[row])
                    }
                };
                if better {
                    leave = Some((ratio, i));
                }
            }
        }
        let Some((_, r)) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(a, b, basis, r, j);
    }
    Err(LpError::IterationLimit)
}

fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], r: usize, j: usize) {
    let m = a.len();
    let p = a[r][j];
    for val in a[r].iter_mut() {
        *val /= p;
    }
    b[r] /= p;
    for i in 0..m {
        if i == r {
            continue;
        }
        let factor = a[i][j];
        if factor.abs() <= EPS {
            continue;
        }
        // Split borrows: copy the pivot row once per elimination.
        let pivot_row = a[r].clone();
        for (val, pv) in a[i].iter_mut().zip(&pivot_row) {
            *val -= factor * pv;
        }
        b[i] -= factor * b[r];
        if b[i].abs() < EPS {
            b[i] = 0.0;
        }
    }
    basis[r] = j;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Relation, Sense};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn maximization_with_le_rows() {
        // Classic: max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.objective, 36.0));
        assert!(close(sol.value(x), 2.0));
        assert!(close(sol.value(y), 6.0));
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase_one() {
        // min 2x + 3y, x + y >= 10, x >= 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.objective, 20.0));
        assert!(close(sol.value(x), 10.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y with x + y == 5, x - y == 1  =>  x=3, y=2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.value(x), 3.0));
        assert!(close(sol.value(y), 2.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 5.0);
        assert!(matches!(solve_lp(&m), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, -1.0)], Relation::Le, 1.0);
        assert!(matches!(solve_lp(&m), Err(LpError::Unbounded)));
    }

    #[test]
    fn upper_bounds_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.5, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.value(x), 2.5));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x >= -4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -4.0, f64::INFINITY, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.value(x), -4.0));
    }

    #[test]
    fn flip_only_upper_bound() {
        // max x with x <= 7 and x free below.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, 7.0, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.value(x), 7.0));
    }

    #[test]
    fn free_variable_split() {
        // min |ish|: min y s.t. y >= x - 3, y >= 3 - x with x free: optimum y=0 at x=3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(y, 1.0), (x, -1.0)], Relation::Ge, -3.0);
        m.add_constraint(vec![(y, 1.0), (x, 1.0)], Relation::Ge, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.objective, 0.0));
        assert!(close(sol.value(x), 3.0));
    }

    #[test]
    fn fixed_variable_bounds() {
        // x fixed at 2 via lower == upper.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 2.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.value(x), 2.0));
        assert!(close(sol.value(y), 3.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        for k in 1..=6 {
            m.add_constraint(
                vec![(x, k as f64), (y, k as f64)],
                Relation::Le,
                4.0 * k as f64,
            );
        }
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.objective, 4.0));
    }

    #[test]
    fn solution_is_feasible_for_the_model() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 3.0);
        let y = m.add_var("y", 1.0, 8.0, 1.0);
        let z = m.add_var("z", 0.0, 5.0, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0), (z, 1.0)], Relation::Ge, 6.0);
        m.add_constraint(vec![(x, 1.0), (z, -1.0)], Relation::Le, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert!(m.is_feasible(sol.values(), 1e-6));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2  (i.e. y >= x + 2)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let sol = solve_lp(&m).unwrap();
        assert!(close(sol.value(y), 2.0));
    }
}
