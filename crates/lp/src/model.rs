// Index loops below walk several parallel arrays at once; iterator
// chains would obscure the lockstep structure.
#![allow(clippy::needless_range_loop)]

use std::fmt;

use crate::LpError;

/// Identifier of a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw column index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Optimization direction of the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective (the caching ILP minimizes total cost).
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// An LP / mixed-integer-LP model under construction.
///
/// Variables carry bounds and an objective coefficient; constraints are
/// sparse linear rows. Mark variables integral with
/// [`Model::add_integer_var`] or [`Model::add_binary_var`] and solve
/// with [`crate::solve_milp`]; continuous models solve with
/// [`crate::solve_lp`].
///
/// # Example
///
/// ```
/// use peercache_lp::{Model, Relation, Sense};
///
/// // A tiny knapsack: maximize 6a + 5b with a + b <= 1, binary.
/// let mut m = Model::new(Sense::Maximize);
/// let a = m.add_binary_var("a", 6.0);
/// let b = m.add_binary_var("b", 5.0);
/// m.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Le, 1.0);
/// let sol = peercache_lp::solve_milp(&m, &Default::default())?;
/// assert!((sol.objective - 6.0).abs() < 1e-6);
/// # Ok::<(), peercache_lp::LpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    names: Vec<String>,
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    integer: Vec<bool>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            names: Vec::new(),
            objective: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            integer: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and the
    /// given objective coefficient. Use `f64::INFINITY` /
    /// `f64::NEG_INFINITY` for free bounds.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj_coeff: f64,
    ) -> VarId {
        let id = VarId(self.names.len());
        self.names.push(name.into());
        self.objective.push(obj_coeff);
        self.lower.push(lower);
        self.upper.push(upper);
        self.integer.push(false);
        id
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    pub fn add_integer_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj_coeff: f64,
    ) -> VarId {
        let id = self.add_var(name, lower, upper, obj_coeff);
        self.integer[id.0] = true;
        id
    }

    /// Adds a binary (0/1) variable — the `x`, `y`, `z` indicators of
    /// the caching ILP.
    pub fn add_binary_var(&mut self, name: impl Into<String>, obj_coeff: f64) -> VarId {
        self.add_integer_var(name, 0.0, 1.0, obj_coeff)
    }

    /// Adds the linear constraint `sum(terms) relation rhs`.
    ///
    /// Terms may repeat a variable; coefficients are summed.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, relation: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables in the model.
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// Iterates over all variable ids, in creation order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.var_count()).map(VarId)
    }

    /// Number of constraint rows in the model.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// Returns `true` if `var` is marked integral.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.integer[var.0]
    }

    /// Bounds of a variable as `(lower, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lower[var.0], self.upper[var.0])
    }

    pub(crate) fn objective_coeffs(&self) -> &[f64] {
        &self.objective
    }

    pub(crate) fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    pub(crate) fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    pub(crate) fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    pub(crate) fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
    }

    /// Validates coefficients and bounds; called by the solvers.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidModel`] for NaN coefficients, crossed
    /// bounds, or constraint terms referencing foreign variables.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, (&l, &u)) in self.lower.iter().zip(&self.upper).enumerate() {
            if l.is_nan() || u.is_nan() {
                return Err(LpError::InvalidModel(format!("nan bound on x{i}")));
            }
            if l > u {
                return Err(LpError::InvalidModel(format!(
                    "variable {} has lower bound {l} > upper bound {u}",
                    self.names[i]
                )));
            }
        }
        for c in &self.objective {
            if c.is_nan() {
                return Err(LpError::InvalidModel("nan objective coefficient".into()));
            }
        }
        for (row, c) in self.constraints.iter().enumerate() {
            if c.rhs.is_nan() {
                return Err(LpError::InvalidModel(format!("nan rhs in row {row}")));
            }
            for &(v, coeff) in &c.terms {
                if v.0 >= self.var_count() {
                    return Err(LpError::InvalidModel(format!(
                        "row {row} references unknown variable {v}"
                    )));
                }
                if coeff.is_nan() {
                    return Err(LpError::InvalidModel(format!(
                        "nan coefficient in row {row}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Evaluates the objective at a point (no feasibility check).
    ///
    /// # Panics
    ///
    /// Panics if `values` has fewer entries than the model has variables.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().zip(values).map(|(c, x)| c * x).sum()
    }

    /// Checks a point against all constraints and bounds within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `values` has fewer entries than the model has variables.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        for i in 0..self.var_count() {
            if values[i] < self.lower[i] - tol || values[i] > self.upper[i] + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coeff)| coeff * values[v.0]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_counts_and_flags() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 2.0);
        let y = m.add_binary_var("y", 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.constraint_count(), 1);
        assert!(!m.is_integer(x));
        assert!(m.is_integer(y));
        assert_eq!(m.bounds(y), (0.0, 1.0));
        assert_eq!(m.var_name(x), "x");
    }

    #[test]
    fn validate_rejects_crossed_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 2.0, 1.0, 0.0);
        assert!(matches!(m.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_foreign_vars() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 0.0, 1.0, 0.0);
        m.add_constraint(vec![(VarId(5), 1.0)], Relation::Le, 1.0);
        assert!(matches!(m.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 0.0, 1.0, f64::NAN);
        assert!(matches!(m.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn feasibility_check_honors_relations() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 5.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[6.0], 1e-9));
        assert!(!m.is_feasible(&[-1.0], 1e-9));
    }

    #[test]
    fn objective_value_sums_terms() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", 0.0, 1.0, 2.0);
        let _y = m.add_var("y", 0.0, 1.0, -1.0);
        assert_eq!(m.objective_value(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn duplicate_terms_are_summed_in_feasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        // x + x <= 4  =>  x <= 2
        m.add_constraint(vec![(x, 1.0), (x, 1.0)], Relation::Le, 4.0);
        assert!(m.is_feasible(&[2.0], 1e-9));
        assert!(!m.is_feasible(&[3.0], 1e-9));
    }
}
