use std::error::Error;
use std::fmt;

/// Errors produced by the LP/MILP solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The pivot loop exceeded its iteration budget — numerically
    /// degenerate input.
    IterationLimit,
    /// Branch-and-bound exceeded its node budget before proving
    /// optimality.
    NodeLimit,
    /// The model is malformed (e.g. a variable with `lower > upper`, or
    /// a NaN coefficient).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "model is infeasible"),
            LpError::Unbounded => write!(f, "model is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::NodeLimit => write!(f, "branch-and-bound node limit exceeded"),
            LpError::InvalidModel(why) => write!(f, "invalid model: {why}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(LpError::Infeasible.to_string(), "model is infeasible");
        assert!(LpError::InvalidModel("bad bound".into())
            .to_string()
            .contains("bad bound"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
