//! A small, dependency-free linear and mixed-integer programming solver.
//!
//! The paper obtains its optimal baseline ("Brtf") by feeding the ILP
//! formulation to PuLP. Rust has no mature pure-Rust ILP solver to lean
//! on (the reproduction notes call the solver bindings "thin"), so this
//! crate implements the needed machinery from scratch:
//!
//! * [`Model`] — an LP/MILP model builder (variables with bounds,
//!   linear constraints, minimize/maximize objective).
//! * [`solve_lp`] — a dense two-phase primal simplex with Bland's rule.
//! * [`solve_milp`] — branch-and-bound on top of the LP relaxation.
//!
//! The solver is deliberately simple and dense: the exact baseline only
//! ever runs on small instances (the paper itself reports brute force
//! "fails to obtain results within meaningful time" beyond ~25 nodes),
//! so clarity and correctness win over sparse-matrix sophistication.
//!
//! # Example
//!
//! ```
//! use peercache_lp::{Model, Relation, Sense};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! m.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
//!
//! let sol = peercache_lp::solve_lp(&m)?;
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! assert!((sol.value(x) - 2.0).abs() < 1e-6);
//! # Ok::<(), peercache_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod model;
mod simplex;
mod writer;

pub use branch_bound::{solve_milp, MilpOptions};
pub use error::LpError;
pub use model::{Model, Relation, Sense, VarId};
pub use simplex::{solve_lp, LpSolution};
