//! Branch-and-bound MILP solver on top of the simplex relaxation.
//!
//! Standard depth-first branch-and-bound: solve the LP relaxation, pick
//! the most fractional integer variable, branch on `floor`/`ceil`
//! bounds, prune by the incumbent. Good enough to certify the caching
//! ILP optimum on the small instances the paper's brute-force baseline
//! covers.

use crate::model::{Model, Sense, VarId};
use crate::simplex::{solve_lp, LpSolution};
use crate::LpError;

/// Tuning knobs for [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of branch-and-bound nodes before giving up with
    /// [`LpError::NodeLimit`].
    pub max_nodes: usize,
    /// Tolerance within which a relaxation value counts as integral.
    pub int_tol: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 200_000,
            int_tol: 1e-6,
        }
    }
}

/// Solves a mixed-integer linear program to optimality.
///
/// # Errors
///
/// * [`LpError::Infeasible`] when no integral point satisfies the model.
/// * [`LpError::Unbounded`] when the relaxation is unbounded.
/// * [`LpError::NodeLimit`] when `opts.max_nodes` is exhausted before
///   optimality is proven.
/// * [`LpError::InvalidModel`] if validation fails.
///
/// # Example
///
/// ```
/// use peercache_lp::{solve_milp, Model, Relation, Sense};
///
/// // Knapsack: max 10a + 6b + 4c, 5a + 4b + 3c <= 10, binary.
/// let mut m = Model::new(Sense::Maximize);
/// let a = m.add_binary_var("a", 10.0);
/// let b = m.add_binary_var("b", 6.0);
/// let c = m.add_binary_var("c", 4.0);
/// m.add_constraint(vec![(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 10.0);
/// let sol = solve_milp(&m, &Default::default())?;
/// assert!((sol.objective - 16.0).abs() < 1e-6);
/// # Ok::<(), peercache_lp::LpError>(())
/// ```
pub fn solve_milp(model: &Model, opts: &MilpOptions) -> Result<LpSolution, LpError> {
    model.validate()?;
    let sense = model.sense();
    let int_vars: Vec<VarId> = (0..model.var_count())
        .map(VarId)
        .filter(|&v| model.is_integer(v))
        .collect();

    let mut stack: Vec<Model> = vec![model.clone()];
    let mut incumbent: Option<LpSolution> = None;
    let mut nodes = 0usize;
    let mut any_feasible_relaxation = false;

    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > opts.max_nodes {
            return Err(LpError::NodeLimit);
        }
        let relax = match solve_lp(&node) {
            Ok(sol) => sol,
            Err(LpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        any_feasible_relaxation = true;
        // Bound pruning: the relaxation is at least as good as any
        // integral descendant, so a bound no better than the incumbent
        // kills the subtree.
        if let Some(best) = &incumbent {
            let improves = match sense {
                Sense::Minimize => relax.objective < best.objective - 1e-9,
                Sense::Maximize => relax.objective > best.objective + 1e-9,
            };
            if !improves {
                continue;
            }
        }
        // Most fractional integer variable.
        let fractional = int_vars
            .iter()
            .map(|&v| {
                let x = relax.value(v);
                (v, x, (x - x.round()).abs())
            })
            .filter(|&(_, _, frac)| frac > opts.int_tol)
            .max_by(|a, b| a.2.total_cmp(&b.2));
        match fractional {
            None => {
                // Integral point: snap and accept as incumbent.
                let mut values = relax.values().to_vec();
                for &v in &int_vars {
                    values[v.index()] = values[v.index()].round();
                }
                let objective = model.objective_value(&values);
                let replace = incumbent.as_ref().is_none_or(|best| match sense {
                    Sense::Minimize => objective < best.objective - 1e-9,
                    Sense::Maximize => objective > best.objective + 1e-9,
                });
                if replace {
                    incumbent = Some(LpSolution { objective, values });
                }
            }
            Some((v, x, _)) => {
                let (lo, hi) = node.bounds(v);
                // Children with crossed bounds are infeasible by
                // construction and are simply not generated.
                if x.floor() >= lo {
                    let mut down = node.clone();
                    down.set_bounds(v, lo, x.floor());
                    stack.push(down);
                }
                if x.ceil() <= hi {
                    let mut up = node;
                    up.set_bounds(v, x.ceil(), hi);
                    // Explore the "up" branch first: facility indicators
                    // at 1 tend to reach integral solutions faster.
                    stack.push(up);
                }
            }
        }
    }

    match incumbent {
        Some(sol) => Ok(sol),
        None if any_feasible_relaxation => Err(LpError::Infeasible),
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Relation, Sense};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.5, 1.0);
        let sol = solve_milp(&m, &Default::default()).unwrap();
        assert!(close(sol.value(x), 3.5));
    }

    #[test]
    fn integrality_forces_rounding_down() {
        // max x, x <= 3.7, integer => 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer_var("x", 0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 3.7);
        let sol = solve_milp(&m, &Default::default()).unwrap();
        assert!(close(sol.value(x), 3.0));
    }

    #[test]
    fn knapsack_with_lp_gap() {
        // LP relaxation is fractional; ILP optimum differs from greedy.
        // max 5a + 4b + 3c, 4a + 3b + 2c <= 5, binary => b + c = 7.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_var("a", 5.0);
        let b = m.add_binary_var("b", 4.0);
        let c = m.add_binary_var("c", 3.0);
        m.add_constraint(vec![(a, 4.0), (b, 3.0), (c, 2.0)], Relation::Le, 5.0);
        let sol = solve_milp(&m, &Default::default()).unwrap();
        assert!(close(sol.objective, 7.0));
        assert!(close(sol.value(a), 0.0));
        assert!(close(sol.value(b), 1.0));
        assert!(close(sol.value(c), 1.0));
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6, integer: no integral point.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer_var("x", 0.4, 0.6, 1.0);
        let _ = x;
        assert!(matches!(
            solve_milp(&m, &Default::default()),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // min y s.t. y >= 2.5 n, n >= 1 integer.
        let mut m = Model::new(Sense::Minimize);
        let n = m.add_integer_var("n", 1.0, 10.0, 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(y, 1.0), (n, -2.5)], Relation::Ge, 0.0);
        let sol = solve_milp(&m, &Default::default()).unwrap();
        assert!(close(sol.value(n), 1.0));
        assert!(close(sol.value(y), 2.5));
    }

    #[test]
    fn facility_location_toy() {
        // Two facilities (open cost 3 and 1), three clients; assignment
        // costs chosen so optimum opens only facility 1.
        // min 3y0 + 1y1 + sum c_ij x_ij
        let cost = [[1.0, 2.0], [1.0, 2.0], [5.0, 1.0]];
        let mut m = Model::new(Sense::Minimize);
        let y0 = m.add_binary_var("y0", 3.0);
        let y1 = m.add_binary_var("y1", 1.0);
        let ys = [y0, y1];
        let mut xs = Vec::new();
        for (j, row) in cost.iter().enumerate() {
            let mut terms = Vec::new();
            for (i, &c) in row.iter().enumerate() {
                let x = m.add_binary_var(format!("x{j}{i}"), c);
                terms.push((x, 1.0));
                // x_ij <= y_i
                m.add_constraint(vec![(x, 1.0), (ys[i], -1.0)], Relation::Le, 0.0);
                xs.push(x);
            }
            m.add_constraint(terms, Relation::Eq, 1.0);
        }
        let sol = solve_milp(&m, &Default::default()).unwrap();
        // Open both: 3+1+1+1+1 = 7; open only f1: 1+2+2+1 = 6; only f0: 3+1+1+5=10.
        assert!(close(sol.objective, 6.0));
        assert!(close(sol.value(y1), 1.0));
        assert!(close(sol.value(y0), 0.0));
    }

    #[test]
    fn node_limit_is_enforced() {
        let mut m = Model::new(Sense::Maximize);
        let mut terms = Vec::new();
        for i in 0..12 {
            let v = m.add_binary_var(format!("v{i}"), 1.0 + (i as f64) * 0.01);
            terms.push((v, 2.0 + (i as f64 % 3.0)));
        }
        m.add_constraint(terms, Relation::Le, 13.5);
        let opts = MilpOptions {
            max_nodes: 2,
            ..Default::default()
        };
        assert!(matches!(solve_milp(&m, &opts), Err(LpError::NodeLimit)));
    }

    #[test]
    fn incumbent_solution_is_feasible_and_integral() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary_var("a", 2.0);
        let b = m.add_binary_var("b", 3.0);
        let c = m.add_binary_var("c", 4.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Relation::Ge, 2.0);
        let sol = solve_milp(&m, &Default::default()).unwrap();
        assert!(m.is_feasible(sol.values(), 1e-6));
        for v in sol.values() {
            assert!((v - v.round()).abs() < 1e-9);
        }
        assert!(close(sol.objective, 5.0));
    }
}
