//! Property-based tests of the LP/MILP solver on random instances.

use proptest::prelude::*;

use peercache_lp::{solve_lp, solve_milp, Model, Relation, Sense};

/// A random bounded-feasible LP: maximize a nonnegative objective over
/// `x ∈ [0, ub]` with `<=` packing rows (always feasible at x = 0,
/// always bounded by the box).
fn packing_lp() -> impl Strategy<Value = Model> {
    (
        2usize..7,
        1usize..6,
        prop::collection::vec(0.0f64..5.0, 2 * 7 + 6 * 7),
    )
        .prop_map(|(nvars, nrows, coeffs)| {
            let mut m = Model::new(Sense::Maximize);
            let mut it = coeffs.into_iter();
            let vars: Vec<_> = (0..nvars)
                .map(|i| {
                    let obj = it.next().unwrap_or(1.0);
                    let ub = 1.0 + it.next().unwrap_or(1.0);
                    m.add_var(format!("x{i}"), 0.0, ub, obj)
                })
                .collect();
            for _ in 0..nrows {
                let terms: Vec<_> = vars
                    .iter()
                    .map(|&v| (v, it.next().unwrap_or(1.0)))
                    .collect();
                let rhs = 1.0 + it.next().unwrap_or(1.0) * 2.0;
                m.add_constraint(terms, Relation::Le, rhs);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lp_solutions_are_feasible_and_box_respecting(m in packing_lp()) {
        let sol = solve_lp(&m).expect("packing LPs are feasible and bounded");
        prop_assert!(m.is_feasible(sol.values(), 1e-6));
        prop_assert!(sol.objective.is_finite());
        // Objective matches the reported point.
        prop_assert!((m.objective_value(sol.values()) - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn lp_beats_every_vertex_of_a_random_sample(m in packing_lp()) {
        let sol = solve_lp(&m).unwrap();
        // Sample a few feasible points (scaled-down bounds); none may
        // beat the reported optimum.
        for scale in [0.0, 0.25, 0.5] {
            let candidate: Vec<f64> = (0..m.var_count())
                .map(|i| m.bounds(m.vars().nth(i).unwrap()).1 * scale)
                .collect();
            if m.is_feasible(&candidate, 1e-9) {
                prop_assert!(m.objective_value(&candidate) <= sol.objective + 1e-6);
            }
        }
    }

    #[test]
    fn milp_is_feasible_integral_and_bounded_by_lp(
        m in packing_lp(),
        flags in prop::collection::vec(any::<bool>(), 7),
    ) {
        // Promote a random subset of variables to integers.
        let mut milp = Model::new(Sense::Maximize);
        let vars: Vec<_> = m
            .vars()
            .enumerate()
            .map(|(i, v)| {
                let (lo, hi) = m.bounds(v);
                let obj = m.objective_value(
                    &(0..m.var_count()).map(|j| if j == i { 1.0 } else { 0.0 }).collect::<Vec<_>>(),
                );
                if flags.get(i).copied().unwrap_or(false) {
                    milp.add_integer_var(format!("x{i}"), lo, hi.floor().max(lo), obj)
                } else {
                    milp.add_var(format!("x{i}"), lo, hi, obj)
                }
            })
            .collect();
        let _ = vars;
        // Re-add the same rows (terms reconstructed via is_feasible on m
        // is not possible; instead rebuild simple box-only MILP). Box
        // MILPs: optimum is the upper bound for positive objectives.
        let sol = solve_milp(&milp, &Default::default()).expect("box MILP solves");
        prop_assert!(milp.is_feasible(sol.values(), 1e-6));
        for v in milp.vars().collect::<Vec<_>>() {
            if milp.is_integer(v) {
                let x = sol.value(v);
                prop_assert!((x - x.round()).abs() < 1e-6);
            }
        }
        // The LP relaxation bounds the MILP optimum from above.
        let relax = solve_lp(&milp).unwrap();
        prop_assert!(sol.objective <= relax.objective + 1e-6);
    }

    #[test]
    fn infeasible_window_is_detected(lo in 0.05f64..0.45) {
        // x integer constrained to a fraction-only window.
        let hi = lo + 0.4;
        prop_assume!(hi.floor() < lo); // no integer inside [lo, hi]
        let mut m = Model::new(Sense::Minimize);
        m.add_integer_var("x", lo, hi, 1.0);
        prop_assert!(matches!(
            solve_milp(&m, &Default::default()),
            Err(peercache_lp::LpError::Infeasible)
        ));
    }

    #[test]
    fn duplicate_rows_do_not_change_the_optimum(m in packing_lp()) {
        let base = solve_lp(&m).unwrap();
        let mut doubled = m.clone();
        // Re-adding an existing constraint is a no-op for the optimum.
        // (Grab the first row by rebuilding it through the public API is
        // impossible; instead add a redundant box row.)
        let v = doubled.vars().next().unwrap();
        let (_, hi) = doubled.bounds(v);
        doubled.add_constraint(vec![(v, 1.0)], Relation::Le, hi);
        let again = solve_lp(&doubled).unwrap();
        prop_assert!((base.objective - again.objective).abs() < 1e-6);
    }
}
