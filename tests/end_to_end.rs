//! End-to-end invariants that every planner must uphold, checked across
//! all five algorithms on shared scenarios.

use peercache::dist::DistributedPlanner;
use peercache::graph::mst::UnionFind;
use peercache::prelude::*;

fn planners() -> Vec<Box<dyn CachePlanner>> {
    vec![
        Box::new(ApproxPlanner::default()),
        Box::new(DistributedPlanner::default()),
        Box::new(GreedyBaselinePlanner::hop_count(BaselineConfig::default())),
        Box::new(GreedyBaselinePlanner::contention(BaselineConfig::default())),
    ]
}

/// Checks every structural invariant of a finished placement.
fn check_placement(net: &Network, placement: &Placement, who: &str) {
    for node in net.graph().nodes() {
        assert!(
            net.used(node) <= net.capacity(node),
            "{who}: node {node} over capacity"
        );
    }
    assert!(
        net.used(net.producer()) == 0,
        "{who}: producer must never cache"
    );
    for cp in placement.chunks() {
        // Every cache holds the chunk it was assigned.
        for &c in &cp.caches {
            assert!(net.is_cached(c, cp.chunk), "{who}: missing copy on {c}");
            assert_ne!(c, net.producer(), "{who}: producer in cache set");
        }
        // Every client is assigned to a node that can serve the chunk.
        assert_eq!(
            cp.assignment.len(),
            net.node_count() - 1,
            "{who}: missing clients"
        );
        for &(client, provider) in &cp.assignment {
            assert_ne!(client, net.producer());
            assert!(
                provider == net.producer() || cp.caches.contains(&provider),
                "{who}: client {client} assigned to non-provider {provider}"
            );
        }
        // The dissemination tree spans caches ∪ producer without cycles.
        let mut uf = UnionFind::new(net.node_count());
        for &(u, v) in &cp.tree_edges {
            assert!(
                net.graph().contains_edge(u, v),
                "{who}: tree edge ({u},{v}) not in graph"
            );
            assert!(uf.union(u.index(), v.index()), "{who}: cycle in tree");
        }
        for &c in &cp.caches {
            assert!(
                uf.connected(c.index(), net.producer().index()),
                "{who}: cache {c} not connected to producer"
            );
        }
        // Cost sanity.
        assert!(cp.costs.access >= 0.0 && cp.costs.access.is_finite());
        assert!(cp.costs.dissemination >= 0.0 && cp.costs.dissemination.is_finite());
        assert!(cp.costs.fairness >= 0.0 && cp.costs.fairness.is_finite());
        if cp.caches.is_empty() {
            assert_eq!(cp.costs.dissemination, 0.0);
            assert_eq!(cp.costs.fairness, 0.0);
        }
    }
}

#[test]
fn all_planners_satisfy_invariants_on_the_paper_grid() {
    for planner in planners() {
        let mut net = paper_grid(6).unwrap();
        let placement = planner.plan(&mut net, 5).unwrap();
        assert_eq!(placement.chunks().len(), 5, "{}", planner.name());
        check_placement(&net, &placement, planner.name());
    }
}

#[test]
fn all_planners_satisfy_invariants_on_random_networks() {
    for seed in [1u64, 2, 3] {
        for planner in planners() {
            let mut net = paper_random(40, seed).unwrap();
            let placement = planner.plan(&mut net, 4).unwrap();
            check_placement(&net, &placement, planner.name());
        }
    }
}

#[test]
fn brute_force_satisfies_invariants_on_small_grids() {
    let mut net = ScenarioBuilder::new(Topology::Grid { rows: 3, cols: 3 })
        .capacity(3)
        .producer(4)
        .build()
        .unwrap();
    let placement = BruteForcePlanner::default().plan(&mut net, 3).unwrap();
    check_placement(&net, &placement, "Brtf");
}

#[test]
fn planners_handle_chunks_beyond_total_capacity() {
    // 3x3, capacity 1 => 8 slots; 12 chunks exceed storage. Planners
    // must degrade to producer-only placements, not crash.
    for planner in planners() {
        let mut net = ScenarioBuilder::new(Topology::Grid { rows: 3, cols: 3 })
            .capacity(1)
            .producer(4)
            .build()
            .unwrap();
        let placement = planner.plan(&mut net, 12).unwrap();
        assert_eq!(placement.chunks().len(), 12, "{}", planner.name());
        check_placement(&net, &placement, planner.name());
        let last = placement.chunks().last().unwrap();
        assert!(
            last.caches.is_empty(),
            "{}: storage was exhausted",
            planner.name()
        );
    }
}

#[test]
fn costs_accumulate_monotonically() {
    let mut net = paper_grid(5).unwrap();
    let placement = ApproxPlanner::default().plan(&mut net, 5).unwrap();
    let acc = placement.accumulated_contention();
    for w in acc.windows(2) {
        assert!(w[1] >= w[0]);
    }
    assert!((acc.last().unwrap() - placement.total_contention_cost()).abs() < 1e-9);
}

#[test]
fn identical_scenarios_produce_identical_plans() {
    for planner in planners() {
        let mut a = paper_grid(4).unwrap();
        let mut b = paper_grid(4).unwrap();
        let pa = planner.plan(&mut a, 3).unwrap();
        let pb = planner.plan(&mut b, 3).unwrap();
        assert_eq!(pa, pb, "{} is nondeterministic", planner.name());
        assert_eq!(a, b);
    }
}

#[test]
fn plan_on_copy_leaves_the_original_untouched() {
    let net = paper_grid(4).unwrap();
    let planner = ApproxPlanner::default();
    let (placement, final_state) = peercache::planner::plan_on_copy(&planner, &net, 3).unwrap();
    assert_eq!(net.load_vector(), vec![0; 16]);
    assert_eq!(placement.chunks().len(), 3);
    assert!(final_state.load_vector().iter().sum::<usize>() > 0);
}
