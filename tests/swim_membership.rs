//! SWIM membership edge cases and world integration: a suspected node
//! that is still alive must be refuted (not confirmed), flapping and
//! grey links must not produce false-positive deaths, and membership
//! confirmations driving [`WorldEvent::NodeDeparted`] must leave the
//! sharded world byte-identical under every [`Parallelism`] setting.

use peercache::approx::ApproxConfig;
use peercache::dist::engine::Tick;
use peercache::dist::membership::{MemberState, MembershipEventKind, Swim, SwimConfig};
use peercache::graph::paths::Parallelism;
use peercache::prelude::*;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn swim(members: usize, timeout: Tick, seed: u64) -> Swim {
    Swim::new(
        (0..members).map(n),
        SwimConfig {
            ping_period: 4,
            suspect_timeout: timeout,
            ping_req_fanout: 2,
            seed,
        },
    )
}

/// A node that goes silent briefly and then answers again is refuted by
/// a later probe — it returns to Alive with a bumped incarnation and is
/// never confirmed dead.
#[test]
fn suspect_timeout_is_refuted_by_a_live_node() {
    let mut detector = swim(5, 40, 7);
    let sleeper = n(3);
    // Silent for ticks [40, 48): long enough for a probe round to miss
    // it (direct + both indirect), far shorter than the 40-tick
    // suspicion timeout.
    let mut net = move |t: Tick, from: NodeId, to: NodeId| {
        !((40..48).contains(&t) && (from == sleeper || to == sleeper))
    };
    for t in 0..200 {
        detector.tick(t, &mut net);
    }
    let kinds: Vec<MembershipEventKind> = detector
        .events()
        .iter()
        .filter(|e| e.node == sleeper)
        .map(|e| e.kind)
        .collect();
    assert!(
        kinds.contains(&MembershipEventKind::Suspected),
        "the silent window must raise a suspicion"
    );
    assert!(
        kinds.contains(&MembershipEventKind::Refuted),
        "the live node must be refuted before the timeout"
    );
    assert!(
        !kinds.contains(&MembershipEventKind::Confirmed),
        "a refuted node is never confirmed"
    );
    assert!(matches!(
        detector.state(sleeper),
        Some(MemberState::Alive { incarnation } ) if incarnation >= 1
    ));
    assert!(detector.take_confirmed().is_empty());
}

/// A permanently flapping link plus a grey (randomly dropping) node:
/// indirect ping-req probes route around the bad link, and a suspicion
/// raised while the grey node's outbound happens to drop is refuted on
/// the next successful probe. Neither node may ever be confirmed dead.
#[test]
fn flapping_and_grey_links_never_confirm_a_live_node() {
    let mut detector = swim(6, 40, 11);
    let flap_a = n(0);
    let grey = n(4);
    let mut net = move |t: Tick, from: NodeId, to: NodeId| {
        // The (0, 4) link is down in both directions forever.
        if (from == flap_a && to == grey) || (from == grey && to == flap_a) {
            return false;
        }
        // The grey node sheds inbound and outbound traffic on a
        // deterministic ~1/3 duty cycle keyed to the sender.
        if (from == grey || to == grey) && (t + from.index() as Tick).is_multiple_of(3) {
            return false;
        }
        true
    };
    for t in 0..400 {
        detector.tick(t, &mut net);
    }
    for node in [flap_a, grey] {
        assert!(
            detector.is_live(node),
            "{node:?} is alive and must stay a member"
        );
        assert!(matches!(
            detector.state(node),
            Some(MemberState::Alive { .. })
        ));
    }
    assert!(
        detector
            .events()
            .iter()
            .all(|e| e.kind != MembershipEventKind::Confirmed),
        "no false-positive confirmation under flap + grey faults"
    );
    // Every suspicion raised against the grey node was refuted.
    let grey_suspects = detector
        .events()
        .iter()
        .filter(|e| e.node == grey && e.kind == MembershipEventKind::Suspected)
        .count();
    let grey_refutes = detector
        .events()
        .iter()
        .filter(|e| e.node == grey && e.kind == MembershipEventKind::Refuted)
        .count();
    assert_eq!(grey_suspects, grey_refutes);
}

/// Runs the detector against a genuinely dead node and feeds each
/// confirmation into the sharded world as a [`WorldEvent::NodeDeparted`].
/// The combined trace must replay byte-identically under every
/// parallelism setting — SWIM draws its own seeded stream and must not
/// perturb (or be perturbed by) the shard fan-out.
fn run_membership_world(par: Parallelism) -> (u64, u64, Vec<TickReport>) {
    let net = Network::new(builders::grid(8, 8), NodeId::new(0), 4).expect("grid builds");
    let cfg = ShardConfig {
        approx: ApproxConfig {
            parallelism: par,
            ..ApproxConfig::default()
        },
        scoped: ScopedConfig::default(),
    };
    let mut world = ShardedWorld::new(net, cfg).expect("sharded world builds");
    // Members = every non-producer node; the producer is infrastructure.
    let mut detector = Swim::new((1..64).map(n), SwimConfig::default());
    let dead = [(40, n(13)), (40, n(37)), (90, n(55))];
    let mut net_fn = move |t: Tick, from: NodeId, to: NodeId| {
        !dead
            .iter()
            .any(|&(at, d)| t >= at && (from == d || to == d))
    };
    let mut reports = Vec::new();
    for t in 0..160u64 {
        detector.tick(t, &mut net_fn);
        let mut batch: Vec<WorldEvent> = detector
            .take_confirmed()
            .into_iter()
            .map(WorldEvent::NodeDeparted)
            .collect();
        if t % 10 == 0 {
            batch.push(WorldEvent::ChunkArrived);
        }
        if batch.is_empty() {
            continue;
        }
        let report = world.tick(&batch).expect("tick applies");
        world.validate().expect("world stays consistent");
        reports.push(report);
    }
    // All three scripted deaths were detected and applied.
    for &(_, d) in &dead {
        assert!(!detector.is_live(d), "{d:?} must be confirmed dead");
        assert!(
            !world.network().active_nodes().contains(&d),
            "{d:?} must have departed the world"
        );
    }
    (world.state_digest(), detector.digest(), reports)
}

#[test]
fn membership_driven_departures_replay_identically_across_parallelism() {
    let (digest, swim_digest, reports) = run_membership_world(Parallelism::Sequential);
    for par in [Parallelism::Threads(2), Parallelism::Auto] {
        let (d, s, r) = run_membership_world(par);
        assert_eq!(d, digest, "{par:?}: world digest diverged");
        assert_eq!(s, swim_digest, "{par:?}: membership history diverged");
        assert_eq!(r, reports, "{par:?}: tick reports diverged");
    }
}
