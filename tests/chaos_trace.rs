//! The ISSUE acceptance scenario for the chaos harness: a seeded
//! chaos trace with ≥500 injected faults — message loss, duplication,
//! reordering, two partition windows, flapping links, a grey node —
//! over one protocol round on the 8x8 paper grid. The round must
//! converge (or report explicit per-component degradation), depose and
//! replace an ADMIN severed by a partition within the lease timeout,
//! and replay byte-identically.

use peercache::dist::engine::{JitterConfig, LossConfig};
use peercache::dist::sim::{run_chunk_round, SimConfig};
use peercache::dist::view::build_views;
use peercache::prelude::*;

/// Builds the acceptance-scenario config: the first partition window
/// opens the tick after `elected_at` (when the NADMIN freezes land) and
/// islands `victim`; a second, overlapping window islands a far corner.
fn chaos_config(elected_at: u64, victim: NodeId, corner: NodeId, lease: u64) -> SimConfig {
    let window_from = elected_at + 1;
    let producer = NodeId::new(9); // paper_grid producer
    SimConfig {
        loss: LossConfig {
            drop_probability: 0.15,
            seed: 11,
        },
        jitter: JitterConfig {
            max_extra_ticks: 2,
            seed: 5,
        },
        chaos: FaultPlan::new(0xC4A05)
            .duplicate(0.15)
            .reorder(0.15, 3)
            .corrupt(0.02)
            .partition(window_from, window_from + 120, vec![victim])
            .partition(window_from + 40, window_from + 100, vec![corner])
            // Down at tick 0 (drops the initial NPI on this pair) but up
            // at the 32-tick retransmits, so the far end still activates.
            .flap(producer, corner, 12, 5)
            .grey(NodeId::new(20), 0.25),
        liveness: LivenessConfig {
            retry_limit: 4,
            backoff_base: 4,
            backoff_jitter: 3,
            lease_ticks: lease,
            election_timeout: 400,
        },
        ..Default::default()
    }
}

#[test]
fn five_hundred_fault_trace_converges_deposes_and_replays() {
    let net = paper_grid(8).unwrap();
    let (views, _) = build_views(&net, 2).unwrap();

    // Learn who gets elected first and when, undisturbed, so the first
    // partition window is guaranteed to sever a freshly elected ADMIN
    // from the clients frozen on it.
    let baseline = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
    let &(elected_at, victim) = baseline
        .elections
        .first()
        .expect("baseline elects an admin");
    let corner = if victim == NodeId::new(0) {
        NodeId::new(63)
    } else {
        NodeId::new(0)
    };
    let lease = 24;
    let cfg = chaos_config(elected_at, victim, corner, lease);
    let window_from = elected_at + 1;

    let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);

    // Convergence-or-explicit-degradation: the round settles within the
    // budget, and any degraded client is one the partition windows
    // actually cut off from the producer.
    assert!(out.ticks < cfg.max_ticks, "chaos round must settle");
    assert!(
        out.degraded.iter().all(|&n| n == victim || n == corner),
        "only islanded nodes may degrade: {:?}",
        out.degraded
    );

    // Fault volume: the trace injects at least 500 faults end to end.
    let injected = out.faults.total() + out.stats.dropped;
    assert!(
        injected >= 500,
        "only {injected} faults injected (chaos {:?}, lossy drops {})",
        out.faults,
        out.stats.dropped
    );
    assert!(out.faults.partition_drops > 0, "partitions must bite");
    assert!(out.faults.flap_drops > 0, "the flapping link must bite");
    assert!(out.faults.duplicated > 0);
    assert!(out.faults.delayed > 0);
    assert!(out.retries > 0, "loss at 15% must trigger retransmissions");

    // The severed ADMIN is deposed within the lease timeout...
    assert!(
        out.depositions >= 1,
        "clients frozen on the severed admin must depose it"
    );
    let first = out.first_deposition.expect("a deposition happened");
    assert!(
        first <= window_from + 2 * lease,
        "deposition at {first} exceeds lease bound {}",
        window_from + 2 * lease
    );
    // ...and the surviving component re-elects or falls back.
    let recovered = out
        .elections
        .iter()
        .any(|&(t, n)| t > window_from && n != victim)
        || out.producer_fallbacks > 0;
    assert!(recovered, "surviving side must re-elect or fall back");

    // Byte-identical replay: the exact same outcome, counters included.
    let replay = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
    assert_eq!(out, replay, "chaos trace must replay byte-identically");
}

#[test]
fn planner_surfaces_liveness_counters_under_chaos() {
    // The full planner runs one chaos-afflicted round per chunk and the
    // RunReport aggregates what happened: retries surface, protocol
    // errors stay at zero (the harness corrupts the wire, never the
    // engine's bookkeeping), and the run is deterministic.
    let sim = SimConfig {
        loss: LossConfig {
            drop_probability: 0.2,
            seed: 7,
        },
        chaos: FaultPlan::new(99).duplicate(0.1).reorder(0.1, 2).flap(
            NodeId::new(2),
            NodeId::new(3),
            10,
            4,
        ),
        liveness: LivenessConfig {
            retry_limit: 3,
            backoff_base: 4,
            backoff_jitter: 2,
            lease_ticks: 20,
            election_timeout: 300,
        },
        ..Default::default()
    };
    let config = DistributedConfig {
        sim,
        ..Default::default()
    };

    let run = |config: &DistributedConfig| {
        let mut net = paper_grid(5).unwrap();
        let planner = DistributedPlanner::new(config.clone());
        let placement = planner.plan(&mut net, 3).unwrap();
        (placement, planner.last_report())
    };
    let (placement, report) = run(&config);
    assert_eq!(placement.chunks().len(), 3);
    assert!(report.retries > 0, "lossy rounds must retry");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.first_error, None);
    assert!(report.messages.dropped > 0);

    let (placement2, report2) = run(&config);
    assert_eq!(placement, placement2);
    assert_eq!(report.messages, report2.messages);
    assert_eq!(report.retries, report2.retries);
    assert_eq!(report.depositions, report2.depositions);
}
