//! The battery-fairness extension (footnote 1 of §III-B): storage and
//! battery Fairness Degree Costs combined in weighted summation.

use peercache::prelude::*;

/// Builds the 6x6 grid with a drained western half.
fn half_drained() -> Network {
    let mut net = paper_grid(6).unwrap();
    for n in net.clients().collect::<Vec<_>>() {
        if n.index() % 6 < 3 {
            net.set_battery(n, 0.15).unwrap();
        }
    }
    net
}

fn side_loads(net: &Network) -> (usize, usize) {
    let mut drained = 0;
    let mut charged = 0;
    for n in net.clients() {
        if n.index() % 6 < 3 {
            drained += net.used(n);
        } else {
            charged += net.used(n);
        }
    }
    (drained, charged)
}

fn plan_with_weight(weight: f64) -> Network {
    let mut net = half_drained();
    let config = ApproxConfig {
        weights: CostWeights {
            battery_fairness: weight,
            ..Default::default()
        },
        ..Default::default()
    };
    ApproxPlanner::new(config).plan(&mut net, 5).unwrap();
    net
}

#[test]
fn battery_weight_shifts_load_to_charged_nodes() {
    let (d0, _) = side_loads(&plan_with_weight(0.0));
    let (d16, c16) = side_loads(&plan_with_weight(16.0));
    assert!(
        d16 * 2 < d0,
        "heavy battery weight should at least halve drained-side load: {d0} -> {d16}"
    );
    assert!(c16 > 0);
}

#[test]
fn zero_weight_reproduces_the_storage_only_planner() {
    // With weight 0 the battery state must be completely invisible.
    let mut fresh = paper_grid(6).unwrap();
    let p1 = ApproxPlanner::default().plan(&mut fresh, 5).unwrap();
    let mut drained = half_drained();
    let p2 = ApproxPlanner::default().plan(&mut drained, 5).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn empty_battery_nodes_are_never_selected_under_battery_weight() {
    let mut net = paper_grid(4).unwrap();
    let dead: Vec<NodeId> = net.clients().take(4).collect();
    for &n in &dead {
        net.set_battery(n, 0.0).unwrap();
    }
    let config = ApproxConfig {
        weights: CostWeights {
            battery_fairness: 1.0,
            ..Default::default()
        },
        ..Default::default()
    };
    ApproxPlanner::new(config).plan(&mut net, 3).unwrap();
    for &n in &dead {
        assert_eq!(net.used(n), 0, "dead node {n} was asked to cache");
    }
}

#[test]
fn exact_solver_honors_battery_costs_too() {
    let mut net = Network::new(builders::grid(2, 3), NodeId::new(0), 3).unwrap();
    // Make node 1 the obvious facility EXCEPT for its dead battery.
    net.set_battery(NodeId::new(1), 0.01).unwrap();
    let config = ExactConfig {
        weights: CostWeights {
            battery_fairness: 5.0,
            ..Default::default()
        },
        ..Default::default()
    };
    BruteForcePlanner::new(config).plan(&mut net, 2).unwrap();
    assert_eq!(net.used(NodeId::new(1)), 0);
}

#[test]
fn draining_battery_over_time_rotates_load_online() {
    use peercache::online::OnlineCache;
    let net = paper_grid(5).unwrap();
    let config = ApproxConfig {
        weights: CostWeights {
            battery_fairness: 8.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut cache = OnlineCache::new(net, config).with_retention(3);
    // Caching costs energy: every selected host loses 20% battery per
    // hosted chunk. The planner must keep rotating to charged peers.
    let mut hosts_over_time: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..10 {
        let caches = cache.insert_chunk().unwrap().caches.clone();
        for &n in &caches {
            cache.drain_battery(n, 0.2);
        }
        hosts_over_time.push(caches);
    }
    // Distinct hosts across the session far exceed one round's set.
    let mut all: Vec<NodeId> = hosts_over_time.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    let first_round = hosts_over_time[0].len().max(1);
    assert!(
        all.len() >= first_round * 2,
        "expected host rotation: {} distinct vs {} in round one",
        all.len(),
        first_round
    );
    for n in cache.network().graph().nodes() {
        assert!(cache.network().used(n) <= cache.network().capacity(n));
    }
}
