//! The paper's headline evaluation claims, asserted as inequalities.
//!
//! Absolute numbers differ from the paper (different Steiner routine,
//! calibrated baseline λ), but the *shapes* must hold: who wins, in
//! which metric, and in which direction things move.

use peercache::dist::DistributedPlanner;
use peercache::prelude::*;

struct Outcome {
    total_contention: f64,
    gini: f64,
    fairness75: f64,
    caching_nodes: usize,
}

fn run(planner: &dyn CachePlanner, net: &mut Network, chunks: usize) -> Outcome {
    let placement = planner.plan(net, chunks).unwrap();
    let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
    Outcome {
        total_contention: placement.total_contention_cost(),
        gini: metrics::gini(&loads),
        fairness75: metrics::p_percentile_fairness(&loads, 0.75),
        caching_nodes: loads.iter().filter(|&&l| l > 0).count(),
    }
}

fn grid_outcomes() -> (Outcome, Outcome, Outcome, Outcome) {
    let mut n1 = paper_grid(6).unwrap();
    let mut n2 = paper_grid(6).unwrap();
    let mut n3 = paper_grid(6).unwrap();
    let mut n4 = paper_grid(6).unwrap();
    (
        run(&ApproxPlanner::default(), &mut n1, 5),
        run(&DistributedPlanner::default(), &mut n2, 5),
        run(
            &GreedyBaselinePlanner::hop_count(BaselineConfig::default()),
            &mut n3,
            5,
        ),
        run(
            &GreedyBaselinePlanner::contention(BaselineConfig::default()),
            &mut n4,
            5,
        ),
    )
}

#[test]
fn fairness_ordering_matches_figure_6_and_7() {
    let (appx, dist, hopc, cont) = grid_outcomes();
    // Gini: fair algorithms < Cont < ~Hopc (paper Fig. 7).
    assert!(
        appx.gini < cont.gini,
        "appx {:.3} vs cont {:.3}",
        appx.gini,
        cont.gini
    );
    assert!(
        dist.gini < cont.gini,
        "dist {:.3} vs cont {:.3}",
        dist.gini,
        cont.gini
    );
    assert!(cont.gini <= hopc.gini + 1e-9);
    // Paper: "our algorithms have Gini coefficient less than 40%".
    assert!(appx.gini < 0.4, "appx gini {:.3}", appx.gini);
    // 75-percentile fairness ordering (Fig. 6): Appx/Dist >> Cont >> Hopc.
    assert!(appx.fairness75 > 2.0 * cont.fairness75);
    assert!(dist.fairness75 > 2.0 * cont.fairness75);
    assert!(cont.fairness75 > hopc.fairness75);
}

#[test]
fn contention_cost_ordering_matches_figure_2() {
    let (appx, dist, hopc, cont) = grid_outcomes();
    // Hopc is clearly the worst on contention (paper: ~52% worse).
    assert!(hopc.total_contention > appx.total_contention);
    assert!(hopc.total_contention > cont.total_contention);
    // Appx is comparable to Cont (paper: within ~9% either way).
    let rel = (appx.total_contention - cont.total_contention) / cont.total_contention;
    assert!(
        rel < 0.15,
        "appx should be within 15% of cont, got {rel:+.2}"
    );
    // Dist is comparable too, with a looser budget (k-hop info only).
    let rel_d = (dist.total_contention - cont.total_contention) / cont.total_contention;
    assert!(rel_d < 0.25, "dist within 25% of cont, got {rel_d:+.2}");
}

#[test]
fn cache_spread_matches_figure_1() {
    let (appx, dist, hopc, cont) = grid_outcomes();
    // Paper Fig. 1/6: fair algorithms recruit ~4x more caching nodes.
    assert!(appx.caching_nodes >= 3 * hopc.caching_nodes);
    assert!(dist.caching_nodes >= 2 * hopc.caching_nodes);
    assert!(appx.caching_nodes > cont.caching_nodes);
    // Baselines concentrate: Hopc picks very few nodes.
    assert!(hopc.caching_nodes <= 4);
}

#[test]
fn hop_limit_sweep_matches_figure_3() {
    // k = 1 starves the protocol; k >= 2 plateaus (paper Fig. 3).
    let mut costs = Vec::new();
    for k in 1..=3u32 {
        let mut net = paper_grid(6).unwrap();
        let planner = DistributedPlanner::with_k_hops(k);
        let placement = planner.plan(&mut net, 5).unwrap();
        costs.push(placement.total_contention_cost());
    }
    assert!(
        costs[0] > 1.1 * costs[1],
        "k=1 ({:.0}) should be clearly worse than k=2 ({:.0})",
        costs[0],
        costs[1]
    );
    let plateau = (costs[1] - costs[2]).abs() / costs[1];
    assert!(
        plateau < 0.15,
        "k=2 vs k=3 should be close, got {plateau:.2}"
    );
}

#[test]
fn gini_stays_low_across_network_sizes() {
    // Paper Fig. 7 claims the fair algorithms' Gini *drops* with size;
    // in our reconstruction the caching set grows slower than the node
    // count, so the coefficient drifts up mildly instead (documented
    // deviation in EXPERIMENTS.md). What must hold: the paper's "<40%"
    // band at every size, while the baselines sit far above it.
    for side in [4usize, 6, 8] {
        let mut net = paper_grid(side).unwrap();
        ApproxPlanner::default().plan(&mut net, 5).unwrap();
        let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
        let g = metrics::gini(&loads);
        assert!(
            g < 0.4,
            "{side}x{side}: appx gini {g:.3} above the paper's band"
        );

        let mut bnet = paper_grid(side).unwrap();
        GreedyBaselinePlanner::hop_count(BaselineConfig::default())
            .plan(&mut bnet, 5)
            .unwrap();
        let bloads: Vec<usize> = bnet.clients().map(|n| bnet.used(n)).collect();
        assert!(
            metrics::gini(&bloads) > 2.0 * g,
            "{side}x{side}: baseline not far above"
        );
    }
}

/// Runs a planner on the Fig. 8/9 scenario and re-costs the placement
/// against the final network state, as §V describes for the multi-item
/// comparison ("putting all the chunks to the original connected graph
/// based on which nodes access which chunks in all rounds").
fn final_costed(planner: &dyn CachePlanner, chunks: usize) -> Placement {
    use peercache::costs::CostWeights;
    use peercache::graph::paths::PathSelection;
    let mut net = paper_grid(6).unwrap();
    let placement = planner.plan(&mut net, chunks).unwrap();
    peercache::placement::recost_final(
        &net,
        &placement,
        CostWeights::default(),
        PathSelection::FewestHops,
    )
    .unwrap()
}

#[test]
fn multi_chunk_growth_matches_figure_8() {
    // Under the multi-item accounting (all rounds priced on the final
    // graph) the fair planner's accumulated cost ends at or below both
    // baselines' (paper: ~4% below Cont, ~25% below Hopc).
    let appx = final_costed(&ApproxPlanner::default(), 10).accumulated_contention();
    let hopc = final_costed(
        &GreedyBaselinePlanner::hop_count(BaselineConfig::default()),
        10,
    )
    .accumulated_contention();
    let cont = final_costed(
        &GreedyBaselinePlanner::contention(BaselineConfig::default()),
        10,
    )
    .accumulated_contention();
    assert!(
        *appx.last().unwrap() < hopc.last().unwrap() * 0.9,
        "appx {:.0} should clearly beat hopc {:.0}",
        appx.last().unwrap(),
        hopc.last().unwrap()
    );
    assert!(
        *appx.last().unwrap() < cont.last().unwrap() * 1.05,
        "appx {:.0} should be within ~5% of cont {:.0}",
        appx.last().unwrap(),
        cont.last().unwrap()
    );
}

#[test]
fn per_chunk_costs_match_figure_9() {
    // Fig. 9: the baselines "always choose the same nodes for the first
    // five chunks, and the same nodes for the next five chunks" — two
    // flat plateaus — while the fair planner's per-chunk costs vary
    // smoothly and sit lower for most chunks.
    let appx = final_costed(&ApproxPlanner::default(), 10).per_chunk_contention();
    let hopc = final_costed(
        &GreedyBaselinePlanner::hop_count(BaselineConfig::default()),
        10,
    )
    .per_chunk_contention();
    // Hopc plateaus: constant within each capacity round.
    for w in hopc[..5].windows(2).chain(hopc[5..].windows(2)) {
        assert!((w[0] - w[1]).abs() < 1e-6, "hopc should plateau: {hopc:?}");
    }
    // Appx is cheaper on at least 8 of the 10 chunks.
    let wins = appx.iter().zip(&hopc).filter(|(a, h)| a < h).count();
    assert!(wins >= 8, "appx cheaper on only {wins}/10 chunks");
    // And its spread stays moderate (no capacity-cliff structure).
    let max = appx.iter().cloned().fold(f64::MIN, f64::max);
    let min = appx.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.5, "appx per-chunk spread too wide: {appx:?}");
}

#[test]
fn random_networks_match_figure_4_ordering() {
    for seed in [11u64, 12] {
        let mut n1 = paper_random(60, seed).unwrap();
        let mut n2 = paper_random(60, seed).unwrap();
        let mut n3 = paper_random(60, seed).unwrap();
        let appx = run(&ApproxPlanner::default(), &mut n1, 5);
        let hopc = run(
            &GreedyBaselinePlanner::hop_count(BaselineConfig::default()),
            &mut n2,
            5,
        );
        let cont = run(
            &GreedyBaselinePlanner::contention(BaselineConfig::default()),
            &mut n3,
            5,
        );
        assert!(appx.total_contention < hopc.total_contention, "seed {seed}");
        assert!(appx.gini < cont.gini, "seed {seed}");
    }
}
