//! The selective-demand extension: chunks with restricted audiences.
//!
//! The paper assumes every node wants every chunk (§III-A); real apps
//! have per-item audiences. Planning, assignment, and costing honor the
//! per-chunk interest sets configured on the [`Network`].

use peercache::dist::DistributedPlanner;
use peercache::prelude::*;

fn corner_audience(net: &mut Network, chunk: usize) {
    // Only the four grid corners want this chunk.
    let n = net.node_count();
    let side = (n as f64).sqrt() as usize;
    let corners = [0, side - 1, n - side, n - 1];
    net.set_interest(ChunkId::new(chunk), corners.into_iter().map(NodeId::new))
        .unwrap();
}

#[test]
fn assignments_cover_exactly_the_audience() {
    let mut net = paper_grid(6).unwrap();
    corner_audience(&mut net, 1);
    let placement = ApproxPlanner::default().plan(&mut net, 3).unwrap();
    // Chunk 1 is assigned to its four corners only.
    let restricted = &placement.chunks()[1];
    assert_eq!(restricted.assignment.len(), 4);
    for &(client, _) in &restricted.assignment {
        assert!(net.is_interested(client, ChunkId::new(1)));
    }
    // Unrestricted chunks still serve all 35 clients.
    assert_eq!(placement.chunks()[0].assignment.len(), 35);
    assert_eq!(placement.chunks()[2].assignment.len(), 35);
}

#[test]
fn restricted_chunks_cost_less_and_cache_less() {
    let run = |restrict: bool| {
        let mut net = paper_grid(6).unwrap();
        if restrict {
            corner_audience(&mut net, 0);
        }
        let p = ApproxPlanner::default().plan(&mut net, 1).unwrap();
        (p.chunks()[0].costs.access, p.chunks()[0].caches.len())
    };
    let (full_access, full_copies) = run(false);
    let (restricted_access, restricted_copies) = run(true);
    assert!(restricted_access < full_access / 2.0);
    assert!(restricted_copies <= full_copies);
}

#[test]
fn empty_audience_places_nothing() {
    let mut net = paper_grid(4).unwrap();
    net.set_interest(ChunkId::new(0), []).unwrap();
    let placement = ApproxPlanner::default().plan(&mut net, 1).unwrap();
    let cp = &placement.chunks()[0];
    assert!(cp.assignment.is_empty());
    assert_eq!(cp.costs.access, 0.0);
    // Nobody asks for it, so no facility is worth opening.
    assert!(cp.caches.is_empty());
}

#[test]
fn exact_solver_honors_interest() {
    let mut net = Network::new(builders::grid(2, 3), NodeId::new(0), 2).unwrap();
    // Only node 5 (far corner) wants chunk 0: the optimum serves it
    // either from the producer or a cache near node 5 — never pays for
    // mass access.
    net.set_interest(ChunkId::new(0), [NodeId::new(5)]).unwrap();
    let placement = BruteForcePlanner::default().plan(&mut net, 1).unwrap();
    let cp = &placement.chunks()[0];
    assert_eq!(cp.assignment.len(), 1);
    assert_eq!(cp.assignment[0].0, NodeId::new(5));
}

#[test]
fn distributed_reporting_respects_interest() {
    let mut net = paper_grid(4).unwrap();
    corner_audience(&mut net, 0);
    let planner = DistributedPlanner::default();
    let placement = planner.plan(&mut net, 2).unwrap();
    assert_eq!(placement.chunks()[0].assignment.len(), 4);
    assert_eq!(placement.chunks()[1].assignment.len(), 15);
}

#[test]
fn online_cache_honors_interest_of_future_chunks() {
    use peercache::online::OnlineCache;
    let mut net = paper_grid(4).unwrap();
    net.set_interest(ChunkId::new(1), [NodeId::new(0)]).unwrap();
    let mut cache = OnlineCache::new(net, ApproxConfig::default());
    let first = cache.insert_chunk().unwrap();
    assert_eq!(first.assignment.len(), 15);
    let second = cache.insert_chunk().unwrap();
    assert_eq!(second.assignment.len(), 1);
}
