//! The ISSUE acceptance suite for R-copy replication: a seeded trace
//! with >500 injected faults (message drops, a partition window,
//! simultaneous deaths, a crash-and-restart) over a 9×9 grid world
//! planning at replication degree R = 3, with SWIM membership driving
//! the departures and a versioned replica layer tracking chunk
//! contents. The oracles:
//!
//! 1. **Durability** — no acknowledged write is ever lost while each
//!    death batch kills at most R − 1 = 2 nodes concurrently.
//! 2. **Convergence** — once the partition heals and writes quiesce,
//!    every chunk's live replicas agree on one version.
//! 3. **Recovery bound** — a crashed-and-restarted node refills
//!    exactly the chunks it hosts (recovery traffic is O(chunks
//!    hosted), not O(total chunks)).
//! 4. **Determinism** — the whole trace replays byte-identically
//!    (world state digest, replica digest, membership history, tick
//!    reports) under Sequential, Threads(2), and Auto parallelism.

use std::cell::Cell;
use std::collections::BTreeSet;

use peercache::approx::ApproxConfig;
use peercache::dist::engine::Tick;
use peercache::dist::membership::{Swim, SwimConfig};
use peercache::dist::replica::ReplicaSim;
use peercache::graph::paths::Parallelism;
use peercache::prelude::*;

const SIDE: usize = 9;
const NODES: usize = SIDE * SIDE;
const TICKS: u64 = 175;
const R: usize = 3;

/// Partition window over the far-corner 3×3 block (never the producer).
/// Shorter than the suspect timeout, so the cut must NOT produce any
/// false-positive confirmation: island suspicions are refuted on heal.
const PART_FROM: Tick = 65;
const PART_UNTIL: Tick = 85;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn in_island(node: NodeId) -> bool {
    let (r, c) = (node.index() / SIDE, node.index() % SIDE);
    r >= 6 && c >= 6
}

/// Deterministic ~2% message loss keyed on `(tick, from, to)`.
fn dropped(t: Tick, from: NodeId, to: NodeId) -> bool {
    let mut x = t
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((from.index() as u64) << 32)
        .wrapping_add(to.index() as u64)
        .wrapping_add(0xC4A0_5EED);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x.is_multiple_of(50)
}

/// Everything comparable about one full trace.
#[derive(Debug, PartialEq)]
struct TraceOutcome {
    world_digest: u64,
    replica_digest: u64,
    swim_digest: u64,
    reports: Vec<TickReport>,
    faults: u64,
    confirmed_deaths: Vec<NodeId>,
}

/// Runs the full chaos trace under one parallelism setting, asserting
/// the durability / convergence / recovery oracles along the way.
fn run_trace(par: Parallelism) -> TraceOutcome {
    let net = Network::new(builders::grid(SIDE, SIDE), n(0), 8).expect("grid builds");
    let cfg = ShardConfig {
        approx: ApproxConfig {
            parallelism: par,
            replication: ReplicationPolicy::with_degree(R),
            ..ApproxConfig::default()
        },
        scoped: ScopedConfig::default(),
    };
    let mut world = ShardedWorld::new(net, cfg).expect("sharded world builds");
    let mut replica = ReplicaSim::new(NODES);
    let mut swim = Swim::new(
        (1..NODES).map(n),
        SwimConfig {
            ping_period: 4,
            // Comfortably longer than the 20-tick partition window:
            // a suspicion raised against an island node just before or
            // during the cut still has several probe periods after the
            // heal to be refuted, so the partition must never produce
            // a false-positive confirmation.
            suspect_timeout: 40,
            ping_req_fanout: 2,
            seed: 0x5717,
        },
    );

    // Shared fault state: the transport closure reads it, the script
    // below mutates it. `Cell`/`BTreeSet`-by-reference keeps the
    // closure `Fn` for the replica layer.
    let faults = Cell::new(0u64);
    let mut dead: BTreeSet<NodeId> = BTreeSet::new();
    let produced = |dead: &BTreeSet<NodeId>, t: Tick, from: NodeId, to: NodeId| -> bool {
        if dead.contains(&from) || dead.contains(&to) {
            return false;
        }
        if (PART_FROM..PART_UNTIL).contains(&t) && in_island(from) != in_island(to) {
            faults.set(faults.get() + 1);
            return false;
        }
        if dropped(t, from, to) {
            faults.set(faults.get() + 1);
            return false;
        }
        true
    };

    let mut reports = Vec::new();
    let mut confirmed_deaths = Vec::new();
    let mut crashed: Option<NodeId> = None;

    for t in 0..TICKS {
        // --- scripted fault injection -------------------------------
        // Death batches of at most R - 1 = 2 concurrent victims, aimed
        // at live replica holders so the durability oracle is real.
        let batch_size = match t {
            30 => 1,
            60 => 2,
            100 => 2,
            _ => 0,
        };
        if batch_size > 0 {
            let victims = pick_holders(&world, &dead, batch_size);
            assert_eq!(victims.len(), batch_size, "trace must find victims");
            for &v in &victims {
                dead.insert(v);
                replica.kill(v);
                faults.set(faults.get() + 1);
            }
            assert!(
                replica.lost_acked_writes().is_empty(),
                "acked writes survive a {batch_size}-death batch at tick {t}"
            );
        }
        // Crash-and-restart: a holder loses its store at 140 and comes
        // back at 145, refilled from its nearest live replica — fast
        // enough that SWIM never confirms it dead.
        if t == 140 {
            let v = *pick_holders(&world, &dead, 1)
                .first()
                .expect("holder exists");
            dead.insert(v);
            replica.kill(v);
            faults.set(faults.get() + 1);
            crashed = Some(v);
        }
        if t == 145 {
            let v = crashed.expect("crash happened at 140");
            dead.remove(&v);
            let hosted = world
                .live_chunks()
                .iter()
                .filter(|&&c| replica.hosts(c).contains(&v))
                .count() as u64;
            let before = replica.recovery_bytes;
            let recovered = replica.revive(v, |a, b| produced(&dead, t, a, b), grid_distance);
            assert_eq!(
                replica.recovery_bytes - before,
                recovered,
                "recovery traffic is counted per chunk copied"
            );
            assert!(
                recovered <= hosted,
                "recovery refills at most the chunks the node hosts \
                 ({recovered} > {hosted})"
            );
            assert!(
                recovered as usize <= world.live_chunks().len(),
                "recovery is bounded by hosted chunks, not total chunks"
            );
        }

        // --- SWIM failure detection --------------------------------
        swim.tick(t, &mut |tk, a, b| produced(&dead, tk, a, b));
        let confirmed = swim.take_confirmed();

        // --- world: departures + arrivals --------------------------
        let mut events: Vec<WorldEvent> = confirmed
            .iter()
            .map(|&d| {
                confirmed_deaths.push(d);
                WorldEvent::NodeDeparted(d)
            })
            .collect();
        if t % 6 == 0 && t <= 150 {
            events.push(WorldEvent::ChunkArrived);
        }
        if !events.is_empty() {
            let report = world.tick(&events).expect("tick applies");
            world.validate().expect("world stays consistent");
            reports.push(report);
        }

        // --- replica layer: writes, sync, reads --------------------
        let live = world.live_chunks();
        // Re-replicate any chunk whose world holder set moved (repair
        // placed fresh copies after a death) and ack new arrivals.
        for &c in &live {
            let holders = world
                .chunk(c)
                .map(|sc| sc.caches.clone())
                .unwrap_or_default();
            if !holders.is_empty() && replica.hosts(c) != holders.as_slice() {
                replica.write(c, world.network().producer(), &holders, |a, b| {
                    produced(&dead, t, a, b)
                });
            }
        }
        // Version churn on the oldest chunk until writes quiesce.
        if t % 4 == 0 && t <= 160 {
            if let Some(&c) = live.first() {
                let holders = world
                    .chunk(c)
                    .map(|sc| sc.caches.clone())
                    .unwrap_or_default();
                if !holders.is_empty() {
                    replica.write(c, world.network().producer(), &holders, |a, b| {
                        produced(&dead, t, a, b)
                    });
                }
            }
        }
        replica.anti_entropy_round(|a, b| produced(&dead, t, a, b));
        if t % 7 == 0 {
            if let Some(&c) = live.last() {
                replica.read(c, world.network().producer(), |a, b| {
                    produced(&dead, t, a, b)
                });
            }
        }

        // --- standing oracles --------------------------------------
        assert!(
            replica.lost_acked_writes().is_empty(),
            "durability oracle violated at tick {t}"
        );
    }

    // No live node was ever confirmed dead: every confirmation matches
    // a scripted death (partition + drops only cause refuted suspicions).
    for &d in &confirmed_deaths {
        assert!(
            dead.contains(&d),
            "false-positive confirmation of live node {d:?}"
        );
    }

    // Oracle 2: post-heal, post-quiescence single-version convergence.
    assert!(
        replica.converged(),
        "live replicas must converge to one version after the heal"
    );
    // The planner honored R = 3 for every live chunk.
    for c in world.live_chunks() {
        let copies = world.chunk(c).map_or(0, |sc| sc.caches.len());
        assert!(copies >= R, "chunk {c:?} ended with {copies} < {R} copies");
    }
    // The scripted deaths were all detected by SWIM (5 confirmed: the
    // crash-restart node must NOT be among them).
    assert_eq!(confirmed_deaths.len(), 5, "exactly the scripted deaths");
    if let Some(v) = crashed {
        assert!(
            !confirmed_deaths.contains(&v),
            "fast recovery beat the suspicion timeout"
        );
        assert!(swim.is_live(v));
    }

    TraceOutcome {
        world_digest: world.state_digest(),
        replica_digest: replica.digest(),
        swim_digest: swim.digest(),
        reports,
        faults: faults.get() + 6, // + the six scripted deaths/crashes
        confirmed_deaths,
    }
}

/// Manhattan distance on the grid — the "nearest live replica" metric.
fn grid_distance(a: NodeId, b: NodeId) -> u64 {
    let (ar, ac) = (a.index() / SIDE, a.index() % SIDE);
    let (br, bc) = (b.index() / SIDE, b.index() % SIDE);
    (ar.abs_diff(br) + ac.abs_diff(bc)) as u64
}

/// Picks `k` current replica holders (oldest chunks first, ascending
/// node id) that are alive, not the producer, and not already dead —
/// deterministic victims that actually carry copies.
fn pick_holders(world: &ShardedWorld, dead: &BTreeSet<NodeId>, k: usize) -> Vec<NodeId> {
    let producer = world.network().producer();
    let mut victims = Vec::with_capacity(k);
    for c in world.live_chunks() {
        if let Some(sc) = world.chunk(c) {
            for &h in &sc.caches {
                if h != producer && !dead.contains(&h) && !victims.contains(&h) {
                    victims.push(h);
                    if victims.len() == k {
                        return victims;
                    }
                }
            }
        }
    }
    victims
}

/// The full acceptance run: oracles hold and the trace is fault-dense.
#[test]
fn chaos_trace_holds_durability_convergence_and_recovery_oracles() {
    let outcome = run_trace(Parallelism::Sequential);
    assert!(
        outcome.faults > 500,
        "trace must inject >500 faults, got {}",
        outcome.faults
    );
    assert!(
        !outcome.reports.is_empty(),
        "world must have processed events"
    );
}

/// Oracle 4: the byte-identical replay across thread settings — the
/// PR 8 shard determinism suite extended to the replication stack.
#[test]
fn replicated_chaos_trace_replays_identically_across_parallelism() {
    let baseline = run_trace(Parallelism::Sequential);
    for par in [Parallelism::Threads(2), Parallelism::Auto] {
        let run = run_trace(par);
        assert_eq!(
            run.world_digest, baseline.world_digest,
            "{par:?}: world digest diverged"
        );
        assert_eq!(
            run.replica_digest, baseline.replica_digest,
            "{par:?}: replica digest diverged"
        );
        assert_eq!(
            run.swim_digest, baseline.swim_digest,
            "{par:?}: membership history diverged"
        );
        assert_eq!(run.reports, baseline.reports, "{par:?}: reports diverged");
        assert_eq!(run.faults, baseline.faults, "{par:?}: fault count diverged");
        assert_eq!(run.confirmed_deaths, baseline.confirmed_deaths);
    }
}
