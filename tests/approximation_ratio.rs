//! Theorem 1 in practice: the iterative approximation stays within the
//! 6.55 factor of the (practical) optimum on every instance we can
//! solve exactly. The paper's own measurement saw at most 5.6.

use peercache::exact::solve_chunk_milp;
use peercache::instance::ConflInstance;
use peercache::prelude::*;

use peercache::costs::CostWeights;
use peercache::graph::paths::PathSelection;

fn total_objective(p: &Placement) -> f64 {
    let c = p.total_costs();
    c.fairness + c.access + c.dissemination
}

#[test]
fn ratio_on_small_grids_is_within_bound() {
    for (rows, cols, producer, chunks) in [(2, 2, 0, 2), (2, 3, 0, 2), (3, 3, 4, 3), (3, 4, 5, 3)] {
        let build = || {
            ScenarioBuilder::new(Topology::Grid { rows, cols })
                .capacity(5)
                .producer(producer)
                .build()
                .unwrap()
        };
        let mut exact_net = build();
        let exact = BruteForcePlanner::default()
            .plan(&mut exact_net, chunks)
            .unwrap();
        let mut appx_net = build();
        let appx = ApproxPlanner::default()
            .plan(&mut appx_net, chunks)
            .unwrap();
        let ratio = total_objective(&appx) / total_objective(&exact);
        assert!(
            ratio <= 6.55 + 1e-9,
            "{rows}x{cols}: ratio {ratio:.3} exceeds the proven bound"
        );
        // Both planners are per-chunk optimal/approximate but myopic
        // across chunks: the exact solver's aggressive early caching
        // inflates the contention later chunks see, so on multi-chunk
        // totals the approximation can genuinely come out ahead. The
        // single-chunk dominance (exact <= approx) is asserted
        // separately in `single_chunk_exact_dominates_approx`.
        assert!(
            ratio >= 0.75,
            "{rows}x{cols}: approximation implausibly beat the exact solver ({ratio:.3})"
        );
    }
}

#[test]
fn ratio_on_random_networks_is_within_bound() {
    for seed in 0..6u64 {
        let build = || {
            ScenarioBuilder::new(Topology::RandomGeometric {
                nodes: 12,
                range: 0.35,
            })
            .capacity(4)
            .producer(0)
            .seed(seed)
            .build()
            .unwrap()
        };
        let mut exact_net = build();
        let exact = BruteForcePlanner::default()
            .plan(&mut exact_net, 2)
            .unwrap();
        let mut appx_net = build();
        let appx = ApproxPlanner::default().plan(&mut appx_net, 2).unwrap();
        let ratio = total_objective(&appx) / total_objective(&exact);
        // Lower bound below 1: per-chunk exactness is myopic across
        // chunks (see `ratio_on_small_grids_is_within_bound`).
        assert!(
            (0.9..=6.55).contains(&ratio),
            "seed {seed}: ratio {ratio:.3} out of range"
        );
    }
}

#[test]
fn single_chunk_exact_dominates_approx() {
    // On a single chunk both solve the same ConFL instance, so the
    // exact optimum is a true lower bound and 6.55x a true upper bound.
    for (rows, cols, producer) in [(2, 3, 0), (3, 3, 4), (3, 4, 5)] {
        let build = || {
            ScenarioBuilder::new(Topology::Grid { rows, cols })
                .capacity(5)
                .producer(producer)
                .build()
                .unwrap()
        };
        let mut exact_net = build();
        let exact = BruteForcePlanner::default()
            .plan(&mut exact_net, 1)
            .unwrap();
        let mut appx_net = build();
        let appx = ApproxPlanner::default().plan(&mut appx_net, 1).unwrap();
        let ratio = total_objective(&appx) / total_objective(&exact);
        assert!(
            (1.0 - 1e-9..=6.55).contains(&ratio),
            "{rows}x{cols}: single-chunk ratio {ratio:.3} out of range"
        );
    }
}

#[test]
fn distributed_ratio_stays_moderate() {
    use peercache::dist::DistributedPlanner;
    let build = || {
        ScenarioBuilder::new(Topology::Grid { rows: 3, cols: 4 })
            .capacity(5)
            .producer(5)
            .build()
            .unwrap()
    };
    let mut exact_net = build();
    let exact = BruteForcePlanner::default()
        .plan(&mut exact_net, 3)
        .unwrap();
    let mut dist_net = build();
    let dist = DistributedPlanner::default()
        .plan(&mut dist_net, 3)
        .unwrap();
    let ratio = total_objective(&dist) / total_objective(&exact);
    // The distributed variant has no proven bound (k-hop information
    // only); empirically it stays in the same ballpark.
    assert!(
        ratio < 6.55,
        "distributed ratio {ratio:.3} unexpectedly high"
    );
}

#[test]
fn milp_certifies_the_brute_force_on_tiny_instances() {
    // On a path graph KMB trees are exact, so the brute force equals
    // the certified MILP optimum for each single-chunk instance.
    let net = Network::new(builders::path(5), NodeId::new(0), 2).unwrap();
    let inst =
        ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops).unwrap();
    let brtf = peercache::exact::best_facility_set(&net, &inst, 20).unwrap();
    let (brtf_costs, _, _) = inst.evaluate_set(&net, &brtf).unwrap();
    let (_, milp_obj) = solve_chunk_milp(&net, &inst).unwrap();
    assert!((brtf_costs.total() - milp_obj).abs() < 1e-6);
}

#[test]
fn milp_lower_bounds_brute_force_on_a_grid() {
    let net = Network::new(builders::grid(2, 3), NodeId::new(1), 3).unwrap();
    let inst =
        ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops).unwrap();
    let brtf = peercache::exact::best_facility_set(&net, &inst, 20).unwrap();
    let (brtf_costs, _, _) = inst.evaluate_set(&net, &brtf).unwrap();
    let (_, milp_obj) = solve_chunk_milp(&net, &inst).unwrap();
    assert!(milp_obj <= brtf_costs.total() + 1e-6);
    assert!(brtf_costs.total() <= 2.0 * milp_obj + 1e-6);
}
