//! Trace completeness under chaos: the causal span capture of a
//! 500-fault round must account for every message exactly once, carry
//! no orphan spans, replay byte-identically, and leave the protocol
//! outcome bit-for-bit unchanged versus an untraced run.
//!
//! The `PEERCACHE_TRACE` sink latches its environment variable once
//! per process, so the traced round runs in a child process (this same
//! test binary re-executed with `--ignored --exact` on the emitter
//! tests below) while the parent re-runs the identical scenario
//! untraced and reconciles the capture against the outcome counters.

use std::path::PathBuf;
use std::process::Command;

use peercache::dist::engine::{JitterConfig, LossConfig};
use peercache::dist::sim::{round_trace_id, run_chunk_round, RoundOutcome, SimConfig};
use peercache::dist::view::build_views;
use peercache::obs;
use peercache::prelude::*;

/// The acceptance chaos scenario: same shape as `chaos_trace.rs` — a
/// 15% lossy 8x8 grid with duplication, reordering, corruption, two
/// partition windows, a flapping link, and a grey node.
fn chaos_config(elected_at: u64, victim: NodeId, corner: NodeId) -> SimConfig {
    let window_from = elected_at + 1;
    let producer = NodeId::new(9);
    SimConfig {
        loss: LossConfig {
            drop_probability: 0.15,
            seed: 11,
        },
        jitter: JitterConfig {
            max_extra_ticks: 2,
            seed: 5,
        },
        chaos: FaultPlan::new(0xC4A05)
            .duplicate(0.15)
            .reorder(0.15, 3)
            .corrupt(0.02)
            .partition(window_from, window_from + 120, vec![victim])
            .partition(window_from + 40, window_from + 100, vec![corner])
            .flap(producer, corner, 12, 5)
            .grey(NodeId::new(20), 0.25),
        liveness: LivenessConfig {
            retry_limit: 4,
            backoff_base: 4,
            backoff_jitter: 3,
            lease_ticks: 24,
            election_timeout: 400,
        },
        ..Default::default()
    }
}

/// Runs the acceptance scenario (deriving the partition victim from an
/// undisturbed baseline, exactly as `chaos_trace.rs` does). Returns the
/// outcome plus the chaos round's deterministic trace id, so the
/// analysis can single out its tree (the baseline round, when traced,
/// contributes a separate trace).
fn run_scenario() -> (RoundOutcome, u64) {
    let net = paper_grid(8).unwrap();
    let (views, _) = build_views(&net, 2).unwrap();
    let baseline = run_chunk_round(&net, &views, ChunkId::new(0), &SimConfig::default());
    let &(elected_at, victim) = baseline
        .elections
        .first()
        .expect("baseline elects an admin");
    let corner = if victim == NodeId::new(0) {
        NodeId::new(63)
    } else {
        NodeId::new(0)
    };
    let cfg = chaos_config(elected_at, victim, corner);
    let trace = round_trace_id(&net, &cfg, ChunkId::new(0));
    (run_chunk_round(&net, &views, ChunkId::new(0), &cfg), trace)
}

/// Child-process emitter for the chaos capture: run under
/// `PEERCACHE_TRACE=<file>` by the parent test. Prints the outcome's
/// `Debug` form so the parent can compare it against the untraced run.
#[test]
#[ignore = "emitter helper; run by chaos_capture_is_complete_and_deterministic"]
fn emit_chaos_trace_child() {
    let (out, _) = run_scenario();
    println!("OUTCOME {out:?}");
    obs::flush();
}

/// Child-process emitter for the small committed fixture
/// (`tests/fixtures/chaos_fixture.jsonl`) that `scripts/check.sh`
/// smoke-tests `repro trace` against: a mildly chaotic grid4 round.
#[test]
#[ignore = "emitter helper; used to (re)generate tests/fixtures/chaos_fixture.jsonl"]
fn emit_fixture_trace_child() {
    let net = paper_grid(4).unwrap();
    let (views, _) = build_views(&net, 2).unwrap();
    let cfg = SimConfig {
        loss: LossConfig {
            drop_probability: 0.1,
            seed: 3,
        },
        chaos: FaultPlan::new(0xF1D0).duplicate(0.1).reorder(0.1, 2),
        liveness: LivenessConfig {
            retry_limit: 3,
            backoff_base: 4,
            backoff_jitter: 2,
            lease_ticks: 20,
            election_timeout: 300,
        },
        ..Default::default()
    };
    let out = run_chunk_round(&net, &views, ChunkId::new(0), &cfg);
    assert!(out.ticks < cfg.max_ticks, "fixture round must settle");
    obs::flush();
}

/// Re-executes this test binary with `PEERCACHE_TRACE={path}` running
/// only the named ignored emitter, and returns its stdout.
fn run_emitter(test_name: &str, path: &std::path::Path) -> String {
    let _ = std::fs::remove_file(path); // the sink appends
    let exe = std::env::current_exe().expect("test binary path");
    let output = Command::new(exe)
        .args([
            "--ignored",
            "--exact",
            test_name,
            "--nocapture",
            "--test-threads=1",
        ])
        .env("PEERCACHE_TRACE", path)
        .output()
        .expect("spawn emitter child");
    assert!(
        output.status.success(),
        "emitter {test_name} failed:\n{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Strips the two wall-clock members every sink record can carry — the
/// `"ts_us":N,` line prefix and a span's `"dur_us":N` — leaving only
/// deterministic content.
fn strip_wall_clock(capture: &str) -> String {
    fn drop_member(line: &str, key: &str) -> String {
        let Some(at) = line.find(key) else {
            return line.to_string();
        };
        let digits_end = line[at + key.len()..]
            .find(|c: char| !c.is_ascii_digit())
            .map_or(line.len(), |d| at + key.len() + d);
        let mut out = String::with_capacity(line.len());
        if line[..at].ends_with(',') {
            out.push_str(&line[..at - 1]);
            out.push_str(&line[digits_end..]);
        } else {
            out.push_str(&line[..at]);
            out.push_str(
                line[digits_end..]
                    .strip_prefix(',')
                    .unwrap_or(&line[digits_end..]),
            );
        }
        out
    }
    capture
        .lines()
        .map(|line| {
            format!(
                "{}\n",
                drop_member(&drop_member(line, "\"ts_us\":"), "\"dur_us\":")
            )
        })
        .collect()
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "peercache_trace_{}_{tag}.jsonl",
        std::process::id()
    ))
}

#[test]
fn chaos_capture_is_complete_and_deterministic() {
    // The same scenario untraced, in-process: the ground truth the
    // capture must reconcile against (and the tracing-off half of the
    // on/off byte-identity check).
    let (untraced, chaos_trace_id) = run_scenario();
    let injected = untraced.faults.total() + untraced.stats.dropped;
    assert!(injected >= 500, "only {injected} faults injected");

    let path_a = tmp_path("a");
    let path_b = tmp_path("b");
    let stdout_a = run_emitter("emit_chaos_trace_child", &path_a);
    let stdout_b = run_emitter("emit_chaos_trace_child", &path_b);

    // Tracing must not perturb the protocol: the traced child's
    // outcome Debug-prints identically to the untraced in-process run.
    // libtest may prefix the line with its own `test ... ` progress
    // text, so search within lines rather than anchoring at column 0.
    let outcome_line = |s: &str| {
        s.lines()
            .find_map(|l| l.split_once("OUTCOME ").map(|(_, rest)| rest.to_string()))
            .expect("child prints OUTCOME line")
    };
    assert_eq!(
        outcome_line(&stdout_a),
        format!("{untraced:?}"),
        "traced outcome differs from untraced outcome"
    );
    assert_eq!(outcome_line(&stdout_a), outcome_line(&stdout_b));

    // Byte-identical replay of the capture itself (modulo wall-clock).
    let capture_a = std::fs::read_to_string(&path_a).expect("read capture a");
    let capture_b = std::fs::read_to_string(&path_b).expect("read capture b");
    assert_eq!(
        strip_wall_clock(&capture_a),
        strip_wall_clock(&capture_b),
        "trace capture must replay byte-identically"
    );
    let _ = std::fs::remove_file(&path_b);

    // Causality: every span's parent resolves inside its trace.
    let spans = obs::parse_spans(&capture_a).expect("capture parses");
    assert!(
        spans.len() as u64 >= injected,
        "{} spans cannot cover {injected} faults",
        spans.len()
    );
    let forest = obs::build_forest(&spans);
    for tree in &forest {
        assert!(
            tree.orphans.is_empty(),
            "trace {:#x} has orphan spans {:?}",
            tree.trace,
            tree.orphans
        );
    }
    let round_tree = forest
        .iter()
        .find(|t| t.trace == chaos_trace_id)
        .expect("chaos round trace present");
    let root = round_tree
        .spans
        .iter()
        .find(|s| s.parent == 0)
        .expect("round trace has a root");
    assert_eq!(root.name, "dist.round");
    assert_eq!(root.fate, "settled");
    for s in &round_tree.spans {
        assert!(s.end >= s.start, "span {} ends before it starts", s.span);
    }

    // Fate reconciliation: the message spans account for every
    // delivery and every drop exactly once.
    let fate_count = |f: &str| round_tree.spans.iter().filter(|s| s.fate == f).count() as u64;
    let msg_spans = round_tree
        .spans
        .iter()
        .filter(|s| s.name.starts_with("dist.msg."));
    let stats = &untraced.stats;
    let faults = &untraced.faults;
    assert_eq!(
        fate_count("delivered") + fate_count("delivered_dup") + fate_count("dead"),
        stats.total(),
        "delivery spans must match MessageStats"
    );
    assert_eq!(fate_count("delivered_dup"), stats.duplicate_delivered);
    assert_eq!(fate_count("dropped:loss"), stats.dropped);
    assert_eq!(fate_count("dropped:partition"), faults.partition_drops);
    assert_eq!(fate_count("dropped:flap"), faults.flap_drops);
    assert_eq!(fate_count("dropped:grey"), faults.grey_drops);
    assert_eq!(fate_count("dropped:corrupt"), faults.corrupted);
    assert_eq!(fate_count("dropped:chaos"), faults.chaos_drops);
    // Every dist.msg.* span resolves to exactly one of the known fates.
    for s in msg_spans {
        assert!(
            matches!(
                s.fate.as_str(),
                "delivered" | "delivered_dup" | "dead" | "expired"
            ) || s.fate.starts_with("dropped:"),
            "span {} has unknown fate {:?}",
            s.span,
            s.fate
        );
    }

    // Marker spans mirror the liveness tallies.
    let name_count = |n: &str| round_tree.spans.iter().filter(|s| s.name == n).count() as u64;
    assert_eq!(name_count("dist.retry"), untraced.retries);
    assert_eq!(name_count("dist.deposition"), untraced.depositions);
    assert_eq!(name_count("dist.election"), untraced.elections.len() as u64);
    let _ = std::fs::remove_file(&path_a);
}
