//! Cross-crate property-based tests (proptest) on randomized networks,
//! capacities and algorithm parameters.

use proptest::prelude::*;

use peercache::costs::{node_contention_terms, ContentionMatrix, CostWeights};
use peercache::graph::paths::PathSelection;
use peercache::graph::{builders, steiner, NodeId};
use peercache::instance::ConflInstance;
use peercache::prelude::*;

/// A random connected scenario: geometric graph + capacities + producer.
fn scenario_strategy() -> impl Strategy<Value = (Network, usize)> {
    (6usize..24, 0u64..500, 1usize..5, 1usize..6).prop_map(|(n, seed, cap, chunks)| {
        let net = ScenarioBuilder::new(Topology::RandomGeometric {
            nodes: n,
            range: 0.35,
        })
        .capacity(cap)
        .producer(0)
        .seed(seed)
        .build()
        .expect("scenario builds");
        (net, chunks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn approx_placements_are_always_valid((net, chunks) in scenario_strategy()) {
        let mut net = net;
        let placement = ApproxPlanner::default().plan(&mut net, chunks).unwrap();
        prop_assert_eq!(placement.chunks().len(), chunks);
        for node in net.graph().nodes() {
            prop_assert!(net.used(node) <= net.capacity(node));
        }
        for cp in placement.chunks() {
            for &(client, provider) in &cp.assignment {
                prop_assert!(net.can_serve(provider, cp.chunk) || cp.caches.contains(&provider));
                prop_assert_ne!(client, net.producer());
            }
            prop_assert!(cp.costs.access.is_finite());
        }
    }

    #[test]
    fn contention_matrix_is_a_metric_on_its_terms((net, _) in scenario_strategy()) {
        let m = ContentionMatrix::compute(&net, PathSelection::MinCost).unwrap();
        let nodes: Vec<NodeId> = net.graph().nodes().collect();
        for &u in nodes.iter().take(6) {
            prop_assert_eq!(m.cost(u, u), 0.0);
            for &v in nodes.iter().take(6) {
                // Symmetry under min-cost routing.
                prop_assert!((m.cost(u, v) - m.cost(v, u)).abs() < 1e-9);
                // Lower-bounded by the endpoint terms for u != v.
                if u != v {
                    let lb = m.node_term(u) + m.node_term(v);
                    prop_assert!(m.cost(u, v) >= lb - 1e-9);
                }
            }
        }
    }

    #[test]
    fn node_terms_grow_with_load((net, _) in scenario_strategy()) {
        let mut net = net;
        let before = node_contention_terms(&net);
        // Cache something on the first client with room.
        let target = net.clients().find(|&c| net.remaining(c) > 0);
        prop_assume!(target.is_some());
        let target = target.unwrap();
        net.cache(target, ChunkId::new(0)).unwrap();
        let after = node_contention_terms(&net);
        prop_assert!(after[target.index()] > before[target.index()]);
        // The producer's term also rises: it now serves one published
        // chunk. Everyone else is untouched.
        prop_assert!(after[net.producer().index()] > before[net.producer().index()]);
        for n in net.graph().nodes() {
            if n != target && n != net.producer() {
                prop_assert_eq!(after[n.index()], before[n.index()]);
            }
        }
    }

    #[test]
    fn fairness_cost_is_monotone_in_load(cap in 2usize..10) {
        let g = builders::grid(2, 2);
        let mut net = Network::new(g, NodeId::new(0), cap).unwrap();
        let node = NodeId::new(1);
        let mut last = net.fairness_cost(node);
        for c in 0..cap {
            net.cache(node, ChunkId::new(c)).unwrap();
            let now = net.fairness_cost(node);
            prop_assert!(now > last || now.is_infinite());
            last = now;
        }
        prop_assert!(net.fairness_cost(node).is_infinite());
    }

    #[test]
    fn steiner_tree_cost_is_monotone_in_terminals((net, _) in scenario_strategy()) {
        let g = net.graph();
        let all: Vec<NodeId> = g.nodes().collect();
        let few = &all[..all.len().min(3)];
        let more = &all[..all.len().min(6)];
        let weight = |u: NodeId, v: NodeId| (g.degree(u) + g.degree(v)) as f64;
        let t_few = steiner::steiner_tree(g, few, weight).unwrap();
        let t_more = steiner::steiner_tree(g, more, weight).unwrap();
        // More terminals can only need a costlier (or equal) tree up to
        // the 2x KMB slack.
        prop_assert!(t_more.cost + 1e-9 >= t_few.cost / 2.0);
        // And every tree is within 2x of the spanning-tree upper bound.
        let spanning = steiner::steiner_tree(g, &all, weight).unwrap();
        prop_assert!(t_more.cost <= spanning.cost * 2.0 + 1e-9);
    }

    #[test]
    fn gini_stays_in_unit_interval(loads in prop::collection::vec(0usize..50, 1..64)) {
        let g = metrics::gini(&loads);
        prop_assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn percentile_fairness_is_monotone_in_p(loads in prop::collection::vec(0usize..20, 2..40)) {
        let f25 = metrics::p_percentile_fairness(&loads, 0.25);
        let f50 = metrics::p_percentile_fairness(&loads, 0.50);
        let f75 = metrics::p_percentile_fairness(&loads, 0.75);
        prop_assert!(f25 <= f50 + 1e-12);
        prop_assert!(f50 <= f75 + 1e-12);
    }

    #[test]
    fn exact_solver_never_loses_to_approx_on_one_chunk(
        n in 5usize..10,
        seed in 0u64..200,
    ) {
        let net = ScenarioBuilder::new(Topology::RandomGeometric { nodes: n, range: 0.4 })
            .capacity(3)
            .producer(0)
            .seed(seed)
            .build()
            .unwrap();
        let inst = ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops)
            .unwrap();
        let best = peercache::exact::best_facility_set(&net, &inst, 20).unwrap();
        let (best_costs, _, _) = inst.evaluate_set(&net, &best).unwrap();
        let (facilities, _) = peercache::approx::dual_ascent(
            &net,
            &inst,
            &ApproxConfig::default(),
        )
        .unwrap();
        let pruned = peercache::planner::prune_unused_facilities(&net, &inst, &facilities);
        let (appx_costs, _, _) = inst.evaluate_set(&net, &pruned).unwrap();
        prop_assert!(appx_costs.total() + 1e-9 >= best_costs.total());
        prop_assert!(appx_costs.total() <= 6.55 * best_costs.total() + 1e-9);
    }

    #[test]
    fn bid_increments_do_not_break_validity(
        u_alpha in 0.25f64..4.0,
        u_beta in 0.25f64..4.0,
        u_gamma in 0.25f64..4.0,
    ) {
        let mut net = paper_grid(4).unwrap();
        let cfg = ApproxConfig { u_alpha, u_beta, u_gamma, ..Default::default() };
        let placement = ApproxPlanner::new(cfg).plan(&mut net, 3).unwrap();
        prop_assert_eq!(placement.chunks().len(), 3);
        for node in net.graph().nodes() {
            prop_assert!(net.used(node) <= net.capacity(node));
        }
    }
}
