//! Determinism suite for the region-sharded world: the same long
//! seeded churn trace (arrivals, retirements, departures, joins, link
//! flaps) must drive [`ShardedWorld`] to a **byte-identical state
//! digest** — and identical per-tick reports, span counts, and
//! cross-shard routing totals — under every [`Parallelism`] setting.
//! The thread knob is pure wall-clock; any divergence is a scheduling
//! leak in the shard fan-out.
//!
//! `scripts/check.sh` re-runs this suite with `--features
//! strict-invariants`, arming the per-tick oracles (full state
//! validation plus a from-scratch scoped-contention rebuild compare)
//! inside every `tick`.

use peercache::approx::ApproxConfig;
use peercache::graph::paths::Parallelism;
use peercache::prelude::*;

/// Tiny xorshift64 generator so the trace is deterministic without
/// pulling a RNG crate into the integration tests.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Keep at least this many active nodes so departures cannot hollow
/// out the audience entirely.
const MIN_ACTIVE: usize = 8;

/// Events per tick batch; [`TICKS`] batches ≥ 200 events total.
const BATCH: usize = 5;

/// Churn ticks driven per trace.
const TICKS: usize = 45;

fn shard_world(net: Network, par: Parallelism) -> ShardedWorld {
    let cfg = ShardConfig {
        approx: ApproxConfig {
            parallelism: par,
            ..ApproxConfig::default()
        },
        scoped: ScopedConfig::default(),
    };
    ShardedWorld::new(net, cfg)
        .expect("sharded world builds")
        .with_retention(5)
}

/// Draws one event from the trace RNG against the current world state.
/// Worlds under different thread settings evolve identically (that is
/// the property under test), so the state-dependent picks stay in
/// lockstep as long as the RNG sequence matches.
fn draw_event(world: &ShardedWorld, rng: &mut XorShift) -> WorldEvent {
    let roll = rng.below(100);
    if roll < 45 || world.live_chunks().is_empty() {
        WorldEvent::ChunkArrived
    } else if roll < 58 {
        let live = world.live_chunks();
        WorldEvent::ChunkRetired(live[rng.below(live.len())])
    } else if roll < 73 {
        let producer = world.network().producer();
        let candidates: Vec<NodeId> = world
            .network()
            .active_nodes()
            .into_iter()
            .filter(|&n| n != producer)
            .collect();
        if candidates.len() < MIN_ACTIVE {
            WorldEvent::ChunkArrived
        } else {
            WorldEvent::NodeDeparted(candidates[rng.below(candidates.len())])
        }
    } else if roll < 81 {
        let active = world.network().active_nodes();
        let a = active[rng.below(active.len())];
        let b = active[rng.below(active.len())];
        let neighbors = if a == b { vec![a] } else { vec![a, b] };
        WorldEvent::NodeJoined {
            neighbors,
            capacity: 3 + rng.below(3),
        }
    } else if roll < 91 {
        let edges: Vec<(NodeId, NodeId)> = world.network().graph().edges().collect();
        let (u, v) = edges[rng.below(edges.len())];
        WorldEvent::LinkDown(u, v)
    } else {
        let active = world.network().active_nodes();
        let a = active[rng.below(active.len())];
        let b = active[rng.below(active.len())];
        if a == b {
            WorldEvent::ChunkArrived
        } else {
            WorldEvent::LinkUp(a, b)
        }
    }
}

/// Outcome of one full trace under one thread setting.
struct TraceRun {
    reports: Vec<TickReport>,
    digest: u64,
    spans: u64,
    cross_events: u64,
    applied: u64,
    rejected: u64,
}

/// Drives [`TICKS`] batches of [`BATCH`] events through a fresh world
/// on `net` and returns everything comparable about the run.
fn run_trace(net: Network, par: Parallelism, seed: u64) -> TraceRun {
    let mut world = shard_world(net, par);
    let mut rng = XorShift::new(seed);
    let mut reports = Vec::with_capacity(TICKS);
    for _ in 0..TICKS {
        let mut batch = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            batch.push(draw_event(&world, &mut rng));
        }
        let report = world.tick(&batch).expect("tick never fails wholesale");
        world
            .validate()
            .expect("world must stay consistent after every tick");
        reports.push(report);
    }
    TraceRun {
        digest: world.state_digest(),
        spans: world.span_count(),
        cross_events: world.cross_shard_events(),
        applied: world.events_applied(),
        rejected: world.events_rejected(),
        reports,
    }
}

/// The parallelism sweep of the suite: serial, two workers, and
/// whatever the host auto-detects.
fn settings() -> [Parallelism; 3] {
    [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Auto,
    ]
}

fn assert_identical_runs(mut make_net: impl FnMut() -> Network, seed: u64) {
    let baseline = run_trace(make_net(), Parallelism::Sequential, seed);
    assert_eq!(
        baseline.applied + baseline.rejected,
        (TICKS * BATCH) as u64,
        "trace must attempt every drawn event"
    );
    assert!(
        baseline.applied >= 200,
        "trace too short: only {} events applied",
        baseline.applied
    );
    assert!(
        baseline.reports.iter().any(|r| !r.departed.is_empty()),
        "trace must exercise departures"
    );
    assert!(
        baseline.reports.iter().any(|r| !r.joined.is_empty()),
        "trace must exercise joins"
    );
    assert!(baseline.cross_events > 0, "trace must route across shards");
    for par in settings().into_iter().skip(1) {
        let run = run_trace(make_net(), par, seed);
        assert_eq!(
            run.digest, baseline.digest,
            "{par:?} diverged from Sequential: state digest differs"
        );
        assert_eq!(run.spans, baseline.spans, "{par:?}: span count differs");
        assert_eq!(
            run.cross_events, baseline.cross_events,
            "{par:?}: cross-shard event count differs"
        );
        assert_eq!(run.applied, baseline.applied);
        assert_eq!(run.rejected, baseline.rejected);
        assert_eq!(
            run.reports, baseline.reports,
            "{par:?}: per-tick reports differ"
        );
    }
}

#[test]
fn grid_churn_trace_is_byte_identical_across_thread_settings() {
    assert_identical_runs(
        || Network::new(builders::grid(14, 14), NodeId::new(0), 5).expect("grid network builds"),
        0x5EED_0001,
    );
}

#[test]
fn random_geometric_churn_trace_is_byte_identical_across_thread_settings() {
    assert_identical_runs(
        || paper_random(120, 7).expect("rgg network builds"),
        0x5EED_0002,
    );
}

/// Re-running the identical trace twice under the *same* setting must
/// also reproduce bit-for-bit — cross-run determinism, the property the
/// committed `BENCH_shard.json` digest rests on.
#[test]
fn traces_replay_identically_across_runs() {
    let net =
        || Network::new(builders::grid(12, 12), NodeId::new(0), 5).expect("grid network builds");
    let a = run_trace(net(), Parallelism::Auto, 0xDECADE);
    let b = run_trace(net(), Parallelism::Auto, 0xDECADE);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.spans, b.spans);
    assert_eq!(a.reports, b.reports);
}
