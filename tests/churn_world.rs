//! Determinism suite for the churn-aware world layer: long seeded
//! churn traces (arrivals, retirements, departures, joins, link flaps)
//! must keep the world state valid after *every* event, land within the
//! repair-vs-replan cost gap at the end, and replay byte-identically.

use peercache::approx::ApproxConfig;
use peercache::prelude::*;

/// Tiny xorshift64 generator so the trace is deterministic without
/// pulling a RNG crate into the integration tests.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// What happened while driving a trace.
#[derive(Debug, PartialEq)]
struct TraceStats {
    applied: usize,
    rejected: usize,
    departures: usize,
    joins: usize,
}

/// Keep at least this many active nodes so departures cannot hollow
/// out the audience entirely.
const MIN_ACTIVE: usize = 8;

/// Drives `attempts` randomly generated events through `world`,
/// validating the full state after every single one. Events the world
/// legitimately rejects (e.g. a departure that would disconnect the
/// survivors) are counted, not fatal — the state must stay consistent
/// either way.
fn drive(world: &mut CacheWorld, seed: u64, attempts: usize) -> TraceStats {
    let mut rng = XorShift::new(seed);
    let mut stats = TraceStats {
        applied: 0,
        rejected: 0,
        departures: 0,
        joins: 0,
    };
    for _ in 0..attempts {
        let roll = rng.below(100);
        let event = if roll < 45 || world.live_chunks().is_empty() {
            WorldEvent::ChunkArrived
        } else if roll < 58 {
            let live = world.live_chunks();
            WorldEvent::ChunkRetired(live[rng.below(live.len())])
        } else if roll < 73 {
            let producer = world.network().producer();
            let candidates: Vec<NodeId> = world
                .network()
                .active_nodes()
                .into_iter()
                .filter(|&n| n != producer)
                .collect();
            if candidates.len() < MIN_ACTIVE {
                WorldEvent::ChunkArrived
            } else {
                WorldEvent::NodeDeparted(candidates[rng.below(candidates.len())])
            }
        } else if roll < 81 {
            let active = world.network().active_nodes();
            let a = active[rng.below(active.len())];
            let b = active[rng.below(active.len())];
            let neighbors = if a == b { vec![a] } else { vec![a, b] };
            WorldEvent::NodeJoined {
                neighbors,
                capacity: 3 + rng.below(3),
            }
        } else if roll < 91 {
            let edges: Vec<(NodeId, NodeId)> = world.network().graph().edges().collect();
            let (u, v) = edges[rng.below(edges.len())];
            WorldEvent::LinkDown(u, v)
        } else {
            let active = world.network().active_nodes();
            let a = active[rng.below(active.len())];
            let b = active[rng.below(active.len())];
            if a == b {
                WorldEvent::ChunkArrived
            } else {
                WorldEvent::LinkUp(a, b)
            }
        };
        let is_departure = matches!(event, WorldEvent::NodeDeparted(_));
        let is_join = matches!(event, WorldEvent::NodeJoined { .. });
        match world.apply(event) {
            Ok(_) => {
                stats.applied += 1;
                stats.departures += usize::from(is_departure);
                stats.joins += usize::from(is_join);
            }
            Err(_) => stats.rejected += 1,
        }
        world
            .validate()
            .expect("world must stay consistent after every event");
    }
    stats
}

fn run_trace(net: Network, seed: u64) -> (CacheWorld, TraceStats) {
    let mut world = CacheWorld::new(net, ApproxConfig::default()).with_retention(4);
    let stats = drive(&mut world, seed, 230);
    (world, stats)
}

#[test]
fn grid_churn_trace_stays_valid_and_near_replan() {
    let (world, stats) = run_trace(paper_grid(6).unwrap(), 0xC0FFEE);
    assert!(
        stats.applied >= 200,
        "trace too short: only {} events applied",
        stats.applied
    );
    assert!(stats.departures > 0, "trace must exercise departures");
    assert!(stats.joins > 0, "trace must exercise joins");
    world.validate().unwrap();
    let gap = world.repair_vs_replan().unwrap();
    assert!(
        gap.cost_ratio <= 1.5,
        "repaired contention {} vs replanned {} exceeds the 1.5x gap",
        gap.repair_contention,
        gap.replan_contention
    );
}

#[test]
fn random_geometric_churn_trace_stays_valid_and_near_replan() {
    let (world, stats) = run_trace(paper_random(24, 7).unwrap(), 0xFEED);
    assert!(
        stats.applied >= 200,
        "trace too short: only {} events applied",
        stats.applied
    );
    assert!(stats.departures > 0);
    world.validate().unwrap();
    let gap = world.repair_vs_replan().unwrap();
    assert!(
        gap.cost_ratio <= 1.5,
        "repaired contention {} vs replanned {} exceeds the 1.5x gap",
        gap.repair_contention,
        gap.replan_contention
    );
}

#[test]
fn churn_traces_replay_identically() {
    let (a, sa) = run_trace(paper_grid(5).unwrap(), 0xDECADE);
    let (b, sb) = run_trace(paper_grid(5).unwrap(), 0xDECADE);
    assert_eq!(sa, sb);
    assert_eq!(a.live_chunks(), b.live_chunks());
    assert_eq!(a.history(), b.history());
    assert_eq!(a.events_applied(), b.events_applied());
    for &chunk in a.live_chunks() {
        assert_eq!(a.placement(chunk), b.placement(chunk));
    }
}
