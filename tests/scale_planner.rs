//! The hierarchical region planner against the dense pipeline: on
//! grids small enough for the full `O(N²)` matrix, the locality stack
//! (k-hop-scoped contention blocks + landmark estimates + per-region
//! ascent) must land within 10% of the dense Appx total, stay
//! byte-identical across runs and thread counts, and keep every
//! placement invariant the dense planner guarantees.

use peercache::approx::{ApproxConfig, ApproxPlanner};
use peercache::graph::paths::Parallelism;
use peercache::planner::CachePlanner;
use peercache::prelude::*;
use peercache::scoped::{HierarchicalPlanner, ScopedConfig};

/// Forced multi-region configurations: region caps well below the node
/// count so the planner genuinely stitches across borders.
fn scoped_configs(side: usize) -> Vec<ScopedConfig> {
    let nodes = side * side;
    [nodes / 12, nodes / 6]
        .into_iter()
        .map(|cap| ScopedConfig {
            region_max: cap.max(8),
            ..ScopedConfig::default()
        })
        .collect()
}

fn hier_planner(cfg: ScopedConfig) -> HierarchicalPlanner {
    HierarchicalPlanner::new(ApproxConfig::default(), cfg)
}

fn plan_with(planner: &dyn CachePlanner, net: &Network, chunks: usize) -> Placement {
    let mut copy = net.clone();
    planner.plan(&mut copy, chunks).expect("planner succeeds")
}

#[test]
fn hierarchical_total_stays_within_ten_percent_of_dense_appx() {
    for side in [10usize, 20] {
        let net = paper_grid(side).unwrap();
        let chunks = 4;
        let dense = plan_with(&ApproxPlanner::default(), &net, chunks);
        let dense_total = dense.total_costs().total();
        for cfg in scoped_configs(side) {
            let hier = plan_with(&hier_planner(cfg), &net, chunks);
            let ratio = hier.total_costs().total() / dense_total;
            assert!(
                ratio <= 1.10 + 1e-9,
                "grid{side} region_max={}: hier/dense = {ratio:.4} exceeds 1.10",
                cfg.region_max
            );
            assert!(
                ratio >= 0.5,
                "grid{side} region_max={}: hier implausibly beat dense 2x ({ratio:.4})",
                cfg.region_max
            );
        }
    }
}

#[test]
fn hierarchical_replay_is_byte_identical_across_runs_and_threads() {
    let net = paper_grid(12).unwrap();
    let chunks = 3;
    let cfg = ScopedConfig {
        region_max: 24,
        ..ScopedConfig::default()
    };
    let reference = plan_with(&hier_planner(cfg), &net, chunks);
    let reference_bytes = format!("{reference:?}");
    for parallelism in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(7),
        Parallelism::Auto,
    ] {
        let planner = HierarchicalPlanner::new(
            ApproxConfig {
                parallelism,
                ..ApproxConfig::default()
            },
            cfg,
        );
        let replay = plan_with(&planner, &net, chunks);
        assert_eq!(
            format!("{replay:?}"),
            reference_bytes,
            "{parallelism:?} diverged from the reference plan"
        );
        assert_eq!(
            replay.total_costs().total().to_bits(),
            reference.total_costs().total().to_bits()
        );
    }
}

#[test]
fn hierarchical_placements_respect_capacity_and_serve_every_client() {
    let net = paper_grid(15).unwrap();
    let chunks = 5;
    for cfg in scoped_configs(15) {
        let mut copy = net.clone();
        let placement = hier_planner(cfg)
            .plan(&mut copy, chunks)
            .expect("planner succeeds");
        assert_eq!(placement.chunks().len(), chunks);
        for node in copy.clients() {
            assert!(
                copy.used(node) <= copy.capacity(node),
                "node {node} over capacity"
            );
        }
        for cp in placement.chunks() {
            // Every interested client is assigned to the producer or an
            // actual cache of this chunk.
            for &(client, provider) in &cp.assignment {
                assert!(
                    provider == copy.producer() || cp.caches.contains(&provider),
                    "client {client} assigned to non-cache {provider}"
                );
            }
            // The dissemination tree touches every cache.
            let mut on_tree: Vec<NodeId> = cp.tree_edges.iter().map(|&(c, _)| c).collect();
            on_tree.push(copy.producer());
            for &cache in &cp.caches {
                assert!(
                    on_tree.contains(&cache),
                    "cache {cache} not reached by the dissemination tree"
                );
            }
        }
    }
}

/// With the oracles armed, every per-region dual ascent re-verifies its
/// dual solution and every commit checks Steiner connectivity; a plan
/// that completes under this feature certifies the scoped path end to
/// end.
#[cfg(feature = "strict-invariants")]
#[test]
fn strict_oracles_hold_on_the_scoped_path() {
    let net = paper_grid(14).unwrap();
    for cfg in scoped_configs(14) {
        let placement = plan_with(&hier_planner(cfg), &net, 4);
        assert!(placement.total_costs().total().is_finite());
    }
}
