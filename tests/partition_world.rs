//! Partition-tolerance suite for the world layer: under the `Allow`
//! policy, seeded churn traces may split the active subgraph, and the
//! incremental component labels must match a from-scratch search after
//! *every* event. Heals must fold deferred demand back in, and the
//! reconciled records must be byte-identical to a fresh independent
//! evaluation of the merged component.

use peercache::approx::ApproxConfig;
use peercache::graph::components::components_of_subset;
use peercache::instance::ConflInstance;
use peercache::prelude::*;

/// Tiny xorshift64 generator so the trace is deterministic without
/// pulling a RNG crate into the integration tests.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// What happened while driving a partition-heavy trace.
#[derive(Debug, PartialEq)]
struct TraceStats {
    applied: usize,
    rejected: usize,
    formed: usize,
    healed: usize,
    max_components: usize,
}

/// Keep at least this many active nodes so departures cannot hollow
/// out the audience entirely.
const MIN_ACTIVE: usize = 8;

/// Drives `attempts` randomly generated events through a
/// partition-tolerant `world`, heavy on link churn so the active
/// subgraph actually splits and merges. After *every* event the
/// incremental component labels are checked against
/// [`components_of_subset`] (the from-scratch search) and the world
/// must pass its own audit.
fn drive(world: &mut CacheWorld, seed: u64, attempts: usize) -> TraceStats {
    let mut rng = XorShift::new(seed);
    let mut stats = TraceStats {
        applied: 0,
        rejected: 0,
        formed: 0,
        healed: 0,
        max_components: 1,
    };
    for _ in 0..attempts {
        let roll = rng.below(100);
        let event = if roll < 30 || world.live_chunks().is_empty() {
            WorldEvent::ChunkArrived
        } else if roll < 40 {
            let live = world.live_chunks();
            WorldEvent::ChunkRetired(live[rng.below(live.len())])
        } else if roll < 50 {
            let producer = world.network().producer();
            let candidates: Vec<NodeId> = world
                .network()
                .active_nodes()
                .into_iter()
                .filter(|&n| n != producer)
                .collect();
            if candidates.len() < MIN_ACTIVE {
                WorldEvent::ChunkArrived
            } else {
                WorldEvent::NodeDeparted(candidates[rng.below(candidates.len())])
            }
        } else if roll < 58 {
            let active = world.network().active_nodes();
            let a = active[rng.below(active.len())];
            let b = active[rng.below(active.len())];
            let neighbors = if a == b { vec![a] } else { vec![a, b] };
            WorldEvent::NodeJoined {
                neighbors,
                capacity: 3 + rng.below(3),
            }
        } else if roll < 80 {
            let edges: Vec<(NodeId, NodeId)> = world.network().graph().edges().collect();
            let (u, v) = edges[rng.below(edges.len())];
            WorldEvent::LinkDown(u, v)
        } else {
            let active = world.network().active_nodes();
            let a = active[rng.below(active.len())];
            let b = active[rng.below(active.len())];
            if a == b {
                WorldEvent::ChunkArrived
            } else {
                WorldEvent::LinkUp(a, b)
            }
        };
        match world.apply(event) {
            Ok(_) => stats.applied += 1,
            Err(_) => stats.rejected += 1,
        }
        // The tentpole property: incremental component tracking must
        // agree with a from-scratch search of the active subgraph.
        let net = world.network();
        let expected = components_of_subset(net.graph(), &net.active_nodes());
        assert_eq!(
            net.active_components(),
            expected,
            "incremental component labels diverged from the ground truth"
        );
        assert_eq!(net.component_count(), expected.len());
        stats.max_components = stats.max_components.max(expected.len());
        for event in world.take_partition_events() {
            match event {
                PartitionEvent::Formed { components, .. } => {
                    stats.formed += 1;
                    assert!(components.len() >= 2, "a split must leave >= 2 components");
                }
                PartitionEvent::Healed { components, .. } => {
                    stats.healed += 1;
                    assert!(!components.is_empty());
                }
            }
        }
        world
            .validate()
            .expect("world must stay consistent after every event");
    }
    stats
}

fn run_trace(net: Network, seed: u64) -> (CacheWorld, TraceStats) {
    let mut world = CacheWorld::new(net, ApproxConfig::default())
        .with_retention(4)
        .partition_tolerant();
    let stats = drive(&mut world, seed, 260);
    (world, stats)
}

#[test]
fn grid_partition_trace_tracks_components_exactly() {
    let (world, stats) = run_trace(paper_grid(6).unwrap(), 0x5EED5);
    assert!(
        stats.applied >= 200,
        "trace too short: only {} events applied",
        stats.applied
    );
    assert!(stats.formed > 0, "trace never split the network");
    assert!(stats.healed > 0, "trace never healed a partition");
    assert!(stats.max_components >= 2);
    world.validate().unwrap();
}

#[test]
fn random_geometric_partition_trace_tracks_components_exactly() {
    let (world, stats) = run_trace(paper_random(24, 7).unwrap(), 0xFACADE);
    assert!(
        stats.applied >= 200,
        "trace too short: only {} events applied",
        stats.applied
    );
    assert!(stats.formed > 0, "trace never split the network");
    assert!(stats.healed > 0, "trace never healed a partition");
    world.validate().unwrap();
}

#[test]
fn partition_traces_replay_identically() {
    let (a, sa) = run_trace(paper_grid(5).unwrap(), 0xDEC0DE);
    let (b, sb) = run_trace(paper_grid(5).unwrap(), 0xDEC0DE);
    assert_eq!(sa, sb);
    assert_eq!(a.live_chunks(), b.live_chunks());
    assert_eq!(a.history(), b.history());
    assert_eq!(a.events_applied(), b.events_applied());
    for &chunk in a.live_chunks() {
        assert_eq!(a.placement(chunk), b.placement(chunk));
    }
}

/// Walks a deterministic split → publish-while-split → heal sequence
/// on the paper grid and checks the reconciled records byte-for-byte
/// against an independent evaluation of the merged component.
#[test]
fn heal_reconciliation_matches_a_fresh_evaluation_of_the_merged_component() {
    let config = ApproxConfig::default();
    let mut world = CacheWorld::new(paper_grid(4).unwrap(), config.clone()).partition_tolerant();
    world.apply(WorldEvent::ChunkArrived).unwrap();
    world.apply(WorldEvent::ChunkArrived).unwrap();

    // Sever corner node 0 (edges to 1 and 4 on the 4x4 grid).
    let corner = NodeId::new(0);
    world
        .apply(WorldEvent::LinkDown(corner, NodeId::new(1)))
        .unwrap();
    assert!(
        world.take_partition_events().is_empty(),
        "one redundant link down must not partition the grid"
    );
    world
        .apply(WorldEvent::LinkDown(corner, NodeId::new(4)))
        .unwrap();
    let expected_deferred: usize = world
        .live_chunks()
        .iter()
        .filter(|&&c| !world.network().is_cached(corner, c))
        .count();
    match world.take_partition_events().as_slice() {
        [PartitionEvent::Formed {
            components,
            deferred_clients,
        }] => {
            assert_eq!(components.len(), 2);
            assert_eq!(components[0], vec![corner]);
            assert_eq!(*deferred_clients, expected_deferred);
        }
        other => panic!("expected one Formed event, got {other:?}"),
    }
    assert_eq!(world.deferred_demand(), expected_deferred);

    // Publishing while split plans the producer side; the severed
    // corner's demand for the new chunk is deferred too.
    world.apply(WorldEvent::ChunkArrived).unwrap();
    let deferred_before_heal = world.deferred_demand();
    assert!(deferred_before_heal > expected_deferred);
    world.validate().unwrap();

    // Heal through one of the cut edges.
    world
        .apply(WorldEvent::LinkUp(corner, NodeId::new(1)))
        .unwrap();
    match world.take_partition_events().as_slice() {
        [PartitionEvent::Healed {
            components,
            restored_clients,
        }] => {
            assert_eq!(components.len(), 1);
            assert_eq!(*restored_clients, deferred_before_heal);
        }
        other => panic!("expected one Healed event, got {other:?}"),
    }
    assert_eq!(world.deferred_demand(), 0);
    world.validate().unwrap();
    world.repair_vs_replan().unwrap();

    // Byte-identity of the reconciliation: every live record must equal
    // an independent evaluation of its holder set on the merged
    // component (fairness is path-dependent bid history and is
    // deliberately carried, not recomputed — everything else is).
    for &chunk in world.live_chunks() {
        let record = world.placement(chunk).expect("live chunk has a record");
        let inst = ConflInstance::build_for_chunk(
            world.network(),
            chunk,
            config.weights,
            config.selection,
        )
        .unwrap();
        let (costs, assignment, tree_edges) =
            inst.evaluate_set(world.network(), &record.caches).unwrap();
        assert_eq!(record.assignment, assignment, "assignment for {chunk:?}");
        assert_eq!(record.tree_edges, tree_edges, "tree for {chunk:?}");
        assert_eq!(record.costs.access, costs.access, "access for {chunk:?}");
        assert_eq!(
            record.costs.dissemination, costs.dissemination,
            "dissemination for {chunk:?}"
        );
        // Every interested client is served again after the heal.
        assert_eq!(
            world.served_clients(chunk),
            world.network().interested_clients(chunk)
        );
        assert!(world.deferred_clients(chunk).is_empty());
    }
}
