//! # peercache
//!
//! A Rust reproduction of *"Fair Caching Algorithms for Peer Data
//! Sharing in Pervasive Edge Computing Environments"* (Huang, Song, Ye,
//! Yang, Li — ICDCS 2017): fairness-aware chunk caching for peer edge
//! devices, formulated as a sum of Connected Facility Location problems
//! and solved with a 6.55-style primal-dual approximation, a distributed
//! bidding protocol, exact baselines, and the prior-work comparators.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `peercache-graph` | topologies, shortest paths, Steiner trees |
//! | [`lp`] | `peercache-lp` | simplex + branch-and-bound MILP |
//! | [`approx`], [`exact`], [`baselines`], ... | `peercache-core` | the caching algorithms and metrics |
//! | [`dist`] | `peercache-dist` | the distributed protocol on a message simulator |
//! | [`obs`] | `peercache-obs` | zero-dependency tracing, metrics, JSONL telemetry |
//!
//! # Quickstart
//!
//! ```
//! use peercache::approx::ApproxPlanner;
//! use peercache::planner::CachePlanner;
//! use peercache::workload::paper_grid;
//! use peercache::metrics;
//!
//! // The paper's default scenario: 6x6 grid, producer node 9,
//! // capacity 5, five chunks everyone wants.
//! let mut network = paper_grid(6)?;
//! let placement = ApproxPlanner::default().plan(&mut network, 5)?;
//!
//! // Fairness: caching load is spread, not stacked on a hot spot.
//! let loads: Vec<usize> = network.clients().map(|n| network.used(n)).collect();
//! assert!(metrics::gini(&loads) < 0.4);
//! println!("total contention cost: {}", placement.total_contention_cost());
//! # Ok::<(), peercache::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use peercache_core::{
    approx, baselines, costs, exact, instance, metrics, online, placement, planner, replication,
    report, scoped, shard, sharded, workload, world, ChunkId, CoreError, Network, PartitionPolicy,
};
pub use peercache_dist as dist;
pub use peercache_graph as graph;
pub use peercache_lp as lp;
pub use peercache_obs as obs;

/// Convenient glob import for examples and tests.
///
/// ```
/// use peercache::prelude::*;
///
/// let net = paper_grid(4)?;
/// assert_eq!(net.node_count(), 16);
/// # Ok::<(), CoreError>(())
/// ```
pub mod prelude {
    pub use crate::approx::{ApproxConfig, ApproxPlanner};
    pub use crate::baselines::{BaselineConfig, GreedyBaselinePlanner};
    pub use crate::costs::CostWeights;
    pub use crate::exact::{BruteForcePlanner, ExactConfig, MilpPlanner};
    pub use crate::metrics;
    pub use crate::placement::Placement;
    pub use crate::planner::CachePlanner;
    pub use crate::replication::ReplicationPolicy;
    pub use crate::scoped::ScopedConfig;
    pub use crate::shard::CrossShardEvent;
    pub use crate::sharded::{ShardConfig, ShardedWorld, TickReport};
    pub use crate::workload::{paper_grid, paper_random, ScenarioBuilder, Topology};
    pub use crate::world::{CacheWorld, EventOutcome, PartitionEvent, WorldEvent};
    pub use crate::{ChunkId, CoreError, Network, PartitionPolicy};
    pub use peercache_dist::{
        DistributedConfig, DistributedPlanner, FaultPlan, FaultStats, LivenessConfig,
    };
    pub use peercache_graph::{builders, NodeId};
}
