//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! cargo run --release --bin repro              # run summary
//! cargo run --release --bin repro -- all
//! cargo run --release --bin repro -- fig2 fig6 fig7
//! ```
//!
//! With no arguments a compact run summary is produced: every planner on
//! every reference topology, with wall time, cost breakdown and message
//! counts. Tables are printed and written as CSV to `target/repro/`.
//!
//! Set `PEERCACHE_TRACE=stderr` (or a file path) to also stream JSONL
//! telemetry — per-chunk planner spans, dual-ascent statistics, and
//! per-round protocol message counters (see `peercache_bench::repro`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    peercache_bench::repro::main_with_args(&args)
}
